//! Recursive kd-style partitioning into grid-aligned boxes with ε halos.
//!
//! Shards are axis-aligned boxes produced by recursive binary splits:
//! each sub-region is cut along its widest remaining dimension (by its
//! data-clipped box span), at an ε-grid cell boundary closest to the
//! region's point-count quantile. Versus 1-D slabs, boxes shrink the
//! surface-to-volume ratio — and with it the ε-halo ghost fraction — as
//! the shard count grows: 8 slabs share 14 internal faces all cutting the
//! same dimension, while a 4×2 kd split exposes far less internal surface
//! per shard.
//!
//! See the crate docs for the halo-ownership invariant this module
//! establishes. Assignment is by *coordinate* test (`x < b` against each
//! cut), so [`Shard::owns`] box membership is exactly the recursion's
//! assignment — no floating-point disagreement between the two is
//! possible.
//!
//! ## Staged build and cost structure
//!
//! The partition sits on the engine's critical path before any device
//! stream starts, so the build is exposed as three separately-priced
//! stages the engine can schedule (and overlap with calibration) instead
//! of one opaque call:
//!
//! 1. [`sample_pass`] — one chunked streaming read of the full dataset
//!    yielding per-dimension bounds *and* the stride sample. The sample
//!    feeds both the kd recursion and the cost-model calibration
//!    ([`crate::cost::calibrate_from_sample`]), so the data is read once
//!    for both — the two-pass prelude of the original design fused.
//! 2. [`build_cuts`] — the recursion over the sample. Left/right
//!    subtrees are independent, so the build is charged at the critical
//!    path of a `lanes`-way fan-out (a subtree's children split the
//!    remaining lane budget; a budget of one serializes). Execution is
//!    sequential — on the simulated-device host every "lane" is a host
//!    thread the engine charges, not spawns, exactly like the chunked
//!    passes below — which also keeps the cut tree bit-identical for
//!    every lane count.
//! 3. [`materialize`] — the two full-data passes (ownership/ghost
//!    classification, owned-prefix gather) plus the ghost-tail copy,
//!    each executed as independent contiguous chunks, one per host lane,
//!    and charged at the slowest lane of each pass.
//!
//! [`partition_par`] composes the three stages; [`Partition::build_time`]
//! charges the sample pass's slowest lane, the recursion's critical path
//! and the slowest lane of each materialize pass — the same host-parallel
//! convention the engine applies to its per-device streams. Because the
//! sample's points are real points, a cut that leaves sample points on
//! both sides leaves real points on both sides — every leaf owns at least
//! one point by construction.

use grid_join::error::GridBuildError;
use sj_datasets::Dataset;
use std::time::{Duration, Instant};

/// Relative widening of the ε halo band guarding against floating-point
/// rounding at cell boundaries (see crate docs, invariant 1).
pub const HALO_SLACK: f64 = 1e-9;

/// One spatial shard: an owned axis-aligned box plus its ε-halo ghosts.
#[derive(Clone, Debug)]
pub struct Shard {
    /// Shard index within the partition.
    pub id: usize,
    /// Per-dimension owned-box lower bounds (inclusive; grid-cell
    /// boundaries, or −∞ on un-cut faces).
    pub lo: Vec<f64>,
    /// Per-dimension owned-box upper bounds (exclusive, or +∞).
    pub hi: Vec<f64>,
    /// Shard-local dataset: owned points first, then halo ghosts.
    pub data: Dataset,
    /// Number of owned points (the prefix of `data`).
    pub owned: usize,
    /// Local→global point-id map (`global_ids[local] = global`).
    pub global_ids: Vec<u32>,
}

impl Shard {
    /// Number of ghost points carried for the halo.
    pub fn ghosts(&self) -> usize {
        self.data.len() - self.owned
    }

    /// Whether `p` lies inside the owned box (`lo[j] ≤ p[j] < hi[j]` in
    /// every dimension) — exactly the partitioner's assignment test, so
    /// ownership regions tile space and are pairwise disjoint.
    pub fn owns(&self, p: &[f64]) -> bool {
        self.lo
            .iter()
            .zip(&self.hi)
            .zip(p)
            .all(|((&lo, &hi), &x)| lo <= x && x < hi)
    }

    /// Whether `p` lies inside the box widened by `halo` on every face —
    /// the ghost-band membership test.
    pub fn in_halo(&self, p: &[f64], halo: f64) -> bool {
        self.lo
            .iter()
            .zip(&self.hi)
            .zip(p)
            .all(|((&lo, &hi), &x)| x >= lo - halo && x <= hi + halo)
    }
}

/// A complete spatial partition of a dataset.
#[derive(Clone, Debug)]
pub struct Partition {
    /// Dimensions the recursion cut across, in cut order (empty for a
    /// single shard).
    pub cut_dims: Vec<usize>,
    /// The search radius the halos were sized for.
    pub epsilon: f64,
    /// The shards, sorted by box lower bounds. Never empty; every shard
    /// owns at least one point (the requested count is an upper bound).
    pub shards: Vec<Shard>,
    /// Modeled build time. From [`partition_par`]: the sample pass's
    /// slowest lane + the recursion's lane-budgeted critical path + the
    /// slowest lane of each chunked materialize pass. From
    /// [`materialize`]: the materialize passes only (the caller owns the
    /// sample and recursion stages and their accounting).
    pub build_time: Duration,
}

impl Partition {
    /// Total ghost points across shards (the replication overhead).
    pub fn ghost_points(&self) -> usize {
        self.shards.iter().map(Shard::ghosts).sum()
    }

    /// Total owned points (equals the input size).
    pub fn owned_points(&self) -> usize {
        self.shards.iter().map(|s| s.owned).sum()
    }

    /// Ghost points as a fraction of owned points (0.0 for empty input).
    pub fn ghost_fraction(&self) -> f64 {
        let owned = self.owned_points();
        if owned == 0 {
            0.0
        } else {
            self.ghost_points() as f64 / owned as f64
        }
    }
}

/// Cap on the stride sample the kd recursion runs over. Cuts derived
/// from sample quantiles cost O(sample · log k) instead of O(n · log k);
/// below the cap the "sample" is the whole dataset and behavior is
/// exact.
pub const SPLIT_SAMPLE_CAP: usize = 8_192;

/// Output of the fused bounds-and-sample pass over the full dataset: the
/// one streaming read shared by the kd recursion ([`build_cuts`]) and the
/// cost-model calibration ([`crate::cost::calibrate_from_sample`]).
#[derive(Clone, Debug)]
pub struct SamplePass {
    /// Points in the scanned dataset.
    pub len: usize,
    /// Dimensionality of the scanned dataset.
    pub dim: usize,
    /// Per-dimension minima over the *full* dataset.
    pub dmin: Vec<f64>,
    /// Per-dimension maxima over the full dataset.
    pub dmax: Vec<f64>,
    /// Global-id stride of the sample (`ids` are the multiples of this).
    pub stride: usize,
    /// Sampled global ids, ascending.
    pub ids: Vec<u32>,
    /// Sample coordinates, column-major: `cols[j][slot]` is dimension `j`
    /// of sample `slot` (the point with global id `ids[slot]`).
    pub cols: Vec<Vec<f64>>,
    /// Modeled pass time: the slowest of the per-lane chunk walls.
    pub wall: Duration,
    /// Measured streaming cost per point of the slowest lane — the
    /// engine's unit price for modeling the materialize passes when it
    /// folds partition cost into the shard-count objective.
    pub per_point: Duration,
}

impl SamplePass {
    /// Row-major coordinates of sample `slot`.
    pub fn point(&self, slot: usize) -> Vec<f64> {
        self.cols.iter().map(|c| c[slot]).collect()
    }
}

/// Streams the full dataset once, in `lanes` contiguous chunks, and
/// returns per-dimension bounds plus the kd recursion's stride sample.
///
/// The sample is strided by *global* id, so each lane contributes a
/// disjoint in-order segment and the assembled sample is bit-identical
/// for every lane count. Each lane is timed individually and
/// [`SamplePass::wall`] charges the slowest — the host-parallel
/// convention shared with [`materialize`] and the engine's per-device
/// streams.
pub fn sample_pass(data: &Dataset, lanes: usize) -> Result<SamplePass, GridBuildError> {
    if data.len() > u32::MAX as usize {
        return Err(GridBuildError::TooManyPoints(data.len()));
    }
    let n = data.len();
    let dim = data.dim();
    if n == 0 {
        return Ok(SamplePass {
            len: 0,
            dim,
            dmin: vec![f64::INFINITY; dim],
            dmax: vec![f64::NEG_INFINITY; dim],
            stride: 1,
            ids: Vec::new(),
            cols: vec![Vec::new(); dim],
            wall: Duration::ZERO,
            per_point: Duration::ZERO,
        });
    }
    let mut span = sj_obs::Span::enter("shard.sample_pass");
    let lanes = lanes.clamp(1, n);
    span.label("lanes", lanes);
    let flat = data.coords();
    let csize = n.div_ceil(lanes);
    let sstride = n.div_ceil(SPLIT_SAMPLE_CAP);
    let mut dmin = vec![f64::INFINITY; dim];
    let mut dmax = vec![f64::NEG_INFINITY; dim];
    let mut ids: Vec<u32> = Vec::with_capacity(n.div_ceil(sstride));
    let mut cols: Vec<Vec<f64>> = vec![Vec::with_capacity(n.div_ceil(sstride)); dim];
    let mut slowest = Duration::ZERO;
    let mut per_point = Duration::ZERO;
    for lane in 0..lanes {
        let (start, end) = (lane * csize, ((lane + 1) * csize).min(n));
        let tl = Instant::now();
        let mut lspan = sj_obs::Span::enter("shard.partition.lane");
        lspan.label("pass", "sample");
        lspan.label("lane", lane);
        let mut next_sample = start.next_multiple_of(sstride);
        for (i, row) in flat[start * dim..end * dim].chunks_exact(dim).enumerate() {
            for j in 0..dim {
                dmin[j] = dmin[j].min(row[j]);
                dmax[j] = dmax[j].max(row[j]);
            }
            if start + i == next_sample {
                next_sample += sstride;
                ids.push((start + i) as u32);
                for j in 0..dim {
                    cols[j].push(row[j]);
                }
            }
        }
        let w = tl.elapsed();
        if w > slowest {
            slowest = w;
            per_point = w.div_f64((end - start).max(1) as f64);
        }
    }
    span.label("sample", ids.len());
    Ok(SamplePass {
        len: n,
        dim,
        dmin,
        dmax,
        stride: sstride,
        ids,
        cols,
        wall: slowest,
        per_point,
    })
}

/// High bit of a cut-tree child link marks a leaf; the rest is the leaf
/// slot.
const LEAF_BIT: u32 = 1 << 31;

/// One interior node of the cut tree the assignment pass walks: points
/// with `p[dim] < b` descend left. Children are node indices, or leaf
/// slots tagged with [`LEAF_BIT`].
struct CutNode {
    dim: u32,
    b: f64,
    kids: [u32; 2],
}

/// A settled leaf box of the recursion.
struct Leaf {
    lo: Vec<f64>,
    hi: Vec<f64>,
    /// Data-clipped span (box ∩ dataset bounding box) — a superset of the
    /// leaf's true point extent, safe for adjacency pruning.
    smin: Vec<f64>,
    smax: Vec<f64>,
}

/// The settled cut tree of one kd recursion: the leaves (in final shard
/// order — lexicographic by box lower bounds), the interior nodes the
/// assignment pass walks, and the recursion's modeled build time.
pub struct CutTree {
    /// The search radius the recursion aligned its cuts to.
    pub epsilon: f64,
    /// Dimensions cut, in pre-order (this region's cut, then the left
    /// subtree's, then the right's).
    pub cut_dims: Vec<usize>,
    /// Modeled build time of the recursion: each region's cut-search wall
    /// is measured, children charge `max` while the lane budget splits
    /// and `+` once it is down to one lane.
    pub build_time: Duration,
    leaves: Vec<Leaf>,
    nodes: Vec<CutNode>,
    root: u32,
}

impl CutTree {
    /// Number of leaf boxes (= shards a materialize will produce).
    pub fn num_leaves(&self) -> usize {
        self.leaves.len()
    }

    /// The leaf (shard) a point falls in: the branchless cut-tree walk
    /// used by the materialize classification pass.
    pub fn leaf_of(&self, p: &[f64]) -> usize {
        let mut link = self.root;
        loop {
            if link & LEAF_BIT != 0 {
                return (link & !LEAF_BIT) as usize;
            }
            let node = &self.nodes[link as usize];
            link = node.kids[(p[node.dim as usize] >= node.b) as usize];
        }
    }
}

/// Runs the sample-guided kd recursion: at most `num_shards` leaves,
/// every cut on an ε-grid cell boundary, charged at the critical path of
/// a `lanes`-way subtree fan-out.
///
/// Independent subtrees fan out across host lanes: a region's two
/// children split its remaining lane budget (⌈b/2⌉ / ⌊b/2⌋) and are
/// charged `max(left, right)` while the budget exceeds one, `left +
/// right` after. Execution is sequential — the lanes are the *simulated*
/// host threads the engine accounts, exactly like [`materialize`]'s
/// chunked passes — so the tree (cuts, leaves, node order) is
/// bit-identical for every lane count; only [`CutTree::build_time`]
/// changes.
pub fn build_cuts(
    sp: &SamplePass,
    epsilon: f64,
    num_shards: usize,
    lanes: usize,
) -> Result<CutTree, GridBuildError> {
    if !(epsilon.is_finite() && epsilon > 0.0) {
        return Err(GridBuildError::InvalidEpsilon(epsilon));
    }
    let num_shards = num_shards.max(1);
    let lanes = lanes.max(1);
    let dim = sp.dim;
    let nsample = sp.ids.len();
    let single = |build_time: Duration| CutTree {
        epsilon,
        cut_dims: Vec::new(),
        build_time,
        leaves: vec![Leaf {
            lo: vec![f64::NEG_INFINITY; dim],
            hi: vec![f64::INFINITY; dim],
            smin: sp.dmin.clone(),
            smax: sp.dmax.clone(),
        }],
        nodes: Vec::new(),
        root: LEAF_BIT,
    };
    if nsample == 0 || num_shards == 1 {
        return Ok(single(Duration::ZERO));
    }

    // Cell-boundary geometry identical to `GridIndex` per dimension:
    // origin min − ε, cell side ε — every cut lands on a global grid-cell
    // boundary, so shard faces align with index cells on both sides.
    let gmin: Vec<f64> = sp.dmin.iter().map(|&m| m - epsilon).collect();
    let root_region = Region {
        slots: (0..nsample as u32).collect(),
        lo: vec![f64::NEG_INFINITY; dim],
        hi: vec![f64::INFINITY; dim],
        smin: sp.dmin.clone(),
        smax: sp.dmax.clone(),
        k: num_shards,
    };
    let mut spl = Splitter {
        cols: &sp.cols,
        gmin,
        epsilon,
        leaves: Vec::new(),
        cut_dims: Vec::new(),
        nodes: Vec::new(),
    };
    let (root, build_time) = spl.split(root_region, lanes);
    let Splitter {
        mut leaves,
        cut_dims,
        mut nodes,
        ..
    } = spl;

    // Deterministic shard order: lexicographic by box lower bounds. The
    // cut tree's leaf links are re-pointed through the permutation.
    let nshards = leaves.len();
    let mut order: Vec<usize> = (0..nshards).collect();
    order.sort_by(|&a, &b| {
        leaves[a]
            .lo
            .iter()
            .zip(&leaves[b].lo)
            .map(|(x, y)| x.total_cmp(y))
            .find(|o| o.is_ne())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut leaf_to_shard = vec![0u32; nshards];
    for (shard, &slot) in order.iter().enumerate() {
        leaf_to_shard[slot] = shard as u32;
    }
    for node in &mut nodes {
        for kid in &mut node.kids {
            if *kid & LEAF_BIT != 0 {
                *kid = LEAF_BIT | leaf_to_shard[(*kid & !LEAF_BIT) as usize];
            }
        }
    }
    {
        let mut permuted: Vec<Option<Leaf>> = leaves.drain(..).map(Some).collect();
        leaves = order
            .iter()
            .map(|&slot| permuted[slot].take().expect("permutation is a bijection"))
            .collect();
    }
    Ok(CutTree {
        epsilon,
        cut_dims,
        build_time,
        leaves,
        nodes,
        root,
    })
}

/// Splits `data` into at most `num_shards` grid-aligned kd boxes with
/// ε-wide halos, on a single host lane. Equivalent to [`partition_par`]
/// with one lane, where `build_time` is plain measured wall time.
pub fn partition(
    data: &Dataset,
    epsilon: f64,
    num_shards: usize,
) -> Result<Partition, GridBuildError> {
    partition_par(data, epsilon, num_shards, 1)
}

/// Splits `data` into at most `num_shards` grid-aligned kd boxes with
/// ε-wide halos, modeling the build across `lanes` host threads:
/// [`sample_pass`] → [`build_cuts`] → [`materialize`], with
/// [`Partition::build_time`] charging all three stages. The partition
/// produced is bit-identical for every lane count; requesting one shard
/// (or data too narrow to cut) yields a single ghost-free shard.
pub fn partition_par(
    data: &Dataset,
    epsilon: f64,
    num_shards: usize,
    lanes: usize,
) -> Result<Partition, GridBuildError> {
    if !(epsilon.is_finite() && epsilon > 0.0) {
        return Err(GridBuildError::InvalidEpsilon(epsilon));
    }
    let sp = sample_pass(data, lanes)?;
    let cuts = build_cuts(&sp, epsilon, num_shards, lanes)?;
    let mut part = materialize(data, &cuts, lanes)?;
    part.build_time += sp.wall + cuts.build_time;
    Ok(part)
}

/// Executes the full-data passes of a settled cut tree: ownership/ghost
/// classification, ghost-tail copies and the owned-prefix gather, each as
/// `lanes` independent contiguous chunks with disjoint outputs.
///
/// The returned [`Partition::build_time`] charges the slowest lane of
/// each pass *only* — the caller composes the sample and recursion
/// stages' accounting (see [`partition_par`]). A single-leaf tree
/// degenerates to one ghost-free whole-dataset shard.
pub fn materialize(
    data: &Dataset,
    cuts: &CutTree,
    lanes: usize,
) -> Result<Partition, GridBuildError> {
    if data.len() > u32::MAX as usize {
        return Err(GridBuildError::TooManyPoints(data.len()));
    }
    let epsilon = cuts.epsilon;
    let t0 = Instant::now();
    if data.is_empty() || cuts.num_leaves() == 1 {
        return Ok(Partition {
            cut_dims: cuts.cut_dims.clone(),
            epsilon,
            shards: vec![whole_shard(data)],
            build_time: t0.elapsed(),
        });
    }
    let mut span = sj_obs::Span::enter("shard.partition");
    span.label("shards", cuts.num_leaves());
    let dim = data.dim();
    let flat = data.coords();
    let n = data.len();
    let lanes = lanes.clamp(1, n);
    span.label("lanes", lanes);
    let csize = n.div_ceil(lanes);
    let chunks: Vec<(usize, usize)> = (0..lanes)
        .map(|c| (c * csize, ((c + 1) * csize).min(n)))
        .collect();
    let leaves = &cuts.leaves;
    let nodes = &cuts.nodes;
    let tree_root = cuts.root;
    let nshards = leaves.len();
    // Modeled build time: the slowest lane of each pass; Σ lane walls −
    // max lane wall is wall time the chunked passes would have hidden had
    // the lanes run concurrently, subtracted from the total at the end.
    let mut hidden = Duration::ZERO;

    // Halo-band geometry per shard, flattened `[s * dim + j]` so the hot
    // passes below chase no per-shard Vec pointers: the widened
    // (ghost-membership) box, the shrunk interior box, and the adjacency
    // list used to prune the per-point band tests.
    let halo = epsilon * (1.0 + HALO_SLACK);
    let mut wlo = vec![0.0f64; nshards * dim];
    let mut whi = vec![0.0f64; nshards * dim];
    let mut ilo = vec![0.0f64; nshards * dim];
    let mut ihi = vec![0.0f64; nshards * dim];
    for (s, l) in leaves.iter().enumerate() {
        for j in 0..dim {
            wlo[s * dim + j] = l.lo[j] - halo;
            whi[s * dim + j] = l.hi[j] + halo;
            ilo[s * dim + j] = l.lo[j] + halo;
            ihi[s * dim + j] = l.hi[j] - halo;
        }
    }
    // takers[t]: shards whose halo band reaches into shard t's points
    // (the data-clipped span bounds t's extent from above, so pruning
    // never misses a ghost).
    let takers: Vec<Vec<u32>> = (0..nshards)
        .map(|t| {
            (0..nshards)
                .filter(|&s| {
                    s != t
                        && (0..dim).all(|j| {
                            leaves[t].smin[j] <= whi[s * dim + j]
                                && leaves[t].smax[j] >= wlo[s * dim + j]
                        })
                })
                .map(|s| s as u32)
                .collect()
        })
        .collect();

    // Pass 1 (chunked): classify every point. The cut-tree walk
    // (branchless child select) yields the owner, recorded in a per-point
    // owner array (each lane writes its own slice) and per-lane per-shard
    // counts; a point strictly farther than the halo from every face of
    // its own box cannot lie in any other shard's halo (disjoint axis-
    // aligned boxes always have a separating axis), and away from the cut
    // surfaces that is almost every point — one box test retires it.
    // Boundary-band points test only the adjacent shards, and ghosts are
    // gathered right here (they are the rare case). Leaf count is capped
    // by the sample size, so owners fit u16.
    struct LaneOut {
        counts: Vec<u32>,
        ghost_ids: Vec<Vec<u32>>,
        ghost_coords: Vec<Vec<f64>>,
    }
    let mut owners = vec![0u16; n];
    let mut lane_outs: Vec<LaneOut> = Vec::with_capacity(lanes);
    let mut slowest = Duration::ZERO;
    let mut summed = Duration::ZERO;
    for (lane, &(start, end)) in chunks.iter().enumerate() {
        let tl = Instant::now();
        let mut lspan = sj_obs::Span::enter("shard.partition.lane");
        lspan.label("pass", "classify");
        lspan.label("lane", lane);
        let mut out = LaneOut {
            counts: vec![0u32; nshards],
            ghost_ids: vec![Vec::new(); nshards],
            ghost_coords: vec![Vec::new(); nshards],
        };
        for (i, p) in flat[start * dim..end * dim].chunks_exact(dim).enumerate() {
            let g = start + i;
            let t = {
                let mut link = tree_root;
                loop {
                    if link & LEAF_BIT != 0 {
                        break (link & !LEAF_BIT) as usize;
                    }
                    let node = &nodes[link as usize];
                    link = node.kids[(p[node.dim as usize] >= node.b) as usize];
                }
            };
            owners[g] = t as u16;
            out.counts[t] += 1;
            let interior = p
                .iter()
                .zip(&ilo[t * dim..t * dim + dim])
                .zip(&ihi[t * dim..t * dim + dim])
                .all(|((&x, &l), &h)| x > l && x < h);
            if interior {
                continue;
            }
            for &s in &takers[t] {
                let s = s as usize;
                let in_band = p
                    .iter()
                    .zip(&wlo[s * dim..s * dim + dim])
                    .zip(&whi[s * dim..s * dim + dim])
                    .all(|((&x, &l), &h)| x >= l && x <= h);
                if in_band {
                    out.ghost_ids[s].push(g as u32);
                    out.ghost_coords[s].extend_from_slice(p);
                }
            }
        }
        let w = tl.elapsed();
        slowest = slowest.max(w);
        summed += w;
        lane_outs.push(out);
    }
    hidden += summed - slowest;

    // Exact-size shard buffers from the lane counts: owned points first
    // (each (lane, shard) pair gets a disjoint scatter window, in lane
    // order, so ids stay ascending), then the ghost tail copied from the
    // per-lane gathers. Zeroed allocation is calloc — pages are faulted
    // by the fill pass either way.
    let mut owned_of = vec![0usize; nshards];
    let mut ghosts_of = vec![0usize; nshards];
    for out in &lane_outs {
        for (s, (o, g)) in owned_of.iter_mut().zip(&mut ghosts_of).enumerate() {
            *o += out.counts[s] as usize;
            *g += out.ghost_ids[s].len();
        }
    }
    let mut ids_buf: Vec<Vec<u32>> = (0..nshards)
        .map(|s| vec![0u32; owned_of[s] + ghosts_of[s]])
        .collect();
    let mut coords_buf: Vec<Vec<f64>> = (0..nshards)
        .map(|s| vec![0.0f64; (owned_of[s] + ghosts_of[s]) * dim])
        .collect();
    // Per-lane scatter cursors, and the ghost tails (small — the halo
    // bands hold a few percent of the points).
    let mut cursors: Vec<Vec<usize>> = Vec::with_capacity(lanes);
    let mut next = vec![0usize; nshards];
    for out in &lane_outs {
        cursors.push(next.clone());
        for (nx, &c) in next.iter_mut().zip(&out.counts) {
            *nx += c as usize;
        }
    }
    // Ghost tails, chunked by *shard* (round-robin over lanes): each
    // shard's tail is a disjoint buffer region, so lanes can copy their
    // shards' tails independently.
    let mut slowest = Duration::ZERO;
    let mut summed = Duration::ZERO;
    for lane in 0..lanes.min(nshards) {
        let tl = Instant::now();
        let mut lspan = sj_obs::Span::enter("shard.partition.lane");
        lspan.label("pass", "ghost_tails");
        lspan.label("lane", lane);
        for s in (lane..nshards).step_by(lanes) {
            let mut cur = owned_of[s];
            for out in &lane_outs {
                let len = out.ghost_ids[s].len();
                ids_buf[s][cur..cur + len].copy_from_slice(&out.ghost_ids[s]);
                coords_buf[s][cur * dim..(cur + len) * dim].copy_from_slice(&out.ghost_coords[s]);
                cur += len;
            }
        }
        let w = tl.elapsed();
        slowest = slowest.max(w);
        summed += w;
    }
    hidden += summed - slowest;
    drop(lane_outs);

    // Pass 2 (chunked): gather the owned prefixes. Each lane re-streams
    // its rows and scatters them into its own windows of the shard
    // buffers — sequential writes per shard, no merge step afterwards.
    let mut slowest = Duration::ZERO;
    let mut summed = Duration::ZERO;
    for (c, &(start, end)) in chunks.iter().enumerate() {
        let tl = Instant::now();
        let mut lspan = sj_obs::Span::enter("shard.partition.lane");
        lspan.label("pass", "gather");
        lspan.label("lane", c);
        let cur = &mut cursors[c];
        for (i, p) in flat[start * dim..end * dim].chunks_exact(dim).enumerate() {
            let g = start + i;
            let s = owners[g] as usize;
            ids_buf[s][cur[s]] = g as u32;
            coords_buf[s][cur[s] * dim..cur[s] * dim + dim].copy_from_slice(p);
            cur[s] += 1;
        }
        let w = tl.elapsed();
        slowest = slowest.max(w);
        summed += w;
    }
    hidden += summed - slowest;

    let shards: Vec<Shard> = ids_buf
        .into_iter()
        .zip(coords_buf)
        .zip(leaves)
        .enumerate()
        .map(|(s, ((ids, coords), leaf))| Shard {
            id: s,
            lo: leaf.lo.clone(),
            hi: leaf.hi.clone(),
            data: Dataset::from_flat(dim, coords),
            owned: owned_of[s],
            global_ids: ids,
        })
        .collect();

    span.label("shards_out", shards.len());
    span.label(
        "ghost_points",
        shards.iter().map(|s| s.data.len() - s.owned).sum::<usize>(),
    );
    Ok(Partition {
        cut_dims: cuts.cut_dims.clone(),
        epsilon,
        shards,
        build_time: t0.elapsed().saturating_sub(hidden),
    })
}

/// One open sub-region of the kd recursion (sample slots, not global
/// ids).
struct Region {
    slots: Vec<u32>,
    lo: Vec<f64>,
    hi: Vec<f64>,
    /// Data-clipped box spans (the box intersected with the dataset's
    /// bounding box): cheap per-dimension width estimates maintained
    /// incrementally at each cut instead of rescanned from the points.
    smin: Vec<f64>,
    smax: Vec<f64>,
    /// Shards this region should still split into.
    k: usize,
}

/// The sample-guided kd recursion state: sample columns in, leaves +
/// pre-order cut dims + the cut tree out.
struct Splitter<'a> {
    /// Sample coordinates, column-major: `cols[j][slot]`.
    cols: &'a [Vec<f64>],
    gmin: Vec<f64>,
    epsilon: f64,
    leaves: Vec<Leaf>,
    cut_dims: Vec<usize>,
    nodes: Vec<CutNode>,
}

impl Splitter<'_> {
    /// Recursively splits one region, appending settled leaves, pre-order
    /// cut dimensions (this region's cut, then the left subtree's, then
    /// the right's) and cut-tree nodes; returns the subtree's child link
    /// plus its modeled build time under `budget` fan-out lanes: this
    /// region's measured cut-search wall, plus `max(left, right)` while
    /// the budget splits across children, `left + right` once it is one.
    fn split(&mut self, r: Region, budget: usize) -> (u32, Duration) {
        let tr = Instant::now();
        if r.k <= 1 || r.slots.len() <= 1 {
            return (self.leaf(r), tr.elapsed());
        }
        let Some((j, b, left_slots, right_slots)) = self.cut_region(&r) else {
            // No dimension offers a cut with both sides non-empty (all
            // sample points share one ε-cell in every dimension): leaf.
            return (self.leaf(r), tr.elapsed());
        };
        let kl = r.k / 2;
        let kr = r.k - kl;
        let mut left_hi = r.hi.clone();
        left_hi[j] = b;
        let mut right_lo = r.lo.clone();
        right_lo[j] = b;
        let mut left_smax = r.smax.clone();
        left_smax[j] = left_smax[j].min(b);
        let mut right_smin = r.smin.clone();
        right_smin[j] = right_smin[j].max(b);
        let left = Region {
            slots: left_slots,
            lo: r.lo,
            hi: left_hi,
            smin: r.smin,
            smax: left_smax,
            k: kl,
        };
        let right = Region {
            slots: right_slots,
            lo: right_lo,
            hi: r.hi,
            smin: right_smin,
            smax: r.smax,
            k: kr,
        };
        self.cut_dims.push(j);
        let node = self.nodes.len();
        self.nodes.push(CutNode {
            dim: j as u32,
            b,
            kids: [u32::MAX, u32::MAX],
        });
        let cut_wall = tr.elapsed();
        let (bl, br) = (budget.div_ceil(2), budget / 2);
        let (lkid, lt) = self.split(left, bl.max(1));
        let (rkid, rt) = self.split(right, br.max(1));
        self.nodes[node].kids = [lkid, rkid];
        let children = if budget > 1 { lt.max(rt) } else { lt + rt };
        (node as u32, cut_wall + children)
    }

    fn leaf(&mut self, r: Region) -> u32 {
        self.leaves.push(Leaf {
            lo: r.lo,
            hi: r.hi,
            smin: r.smin,
            smax: r.smax,
        });
        LEAF_BIT | (self.leaves.len() - 1) as u32
    }

    /// Finds the best cut of one region: dimensions in descending span
    /// order (data-clipped box spans), each probed at the two grid
    /// boundaries bracketing the region's balance quantile; the first
    /// boundary with both sides non-empty wins. Returns `(dim, boundary,
    /// left_slots, right_slots)` with the coordinate test `x < boundary`
    /// deciding sides.
    #[allow(clippy::type_complexity)]
    fn cut_region(&self, r: &Region) -> Option<(usize, f64, Vec<u32>, Vec<u32>)> {
        let dim = self.cols.len();
        let n = r.slots.len();
        let mut dims: Vec<usize> = (0..dim).collect();
        dims.sort_by(|&a, &b| (r.smax[b] - r.smin[b]).total_cmp(&(r.smax[a] - r.smin[a])));

        // Left child's share of the region's points under the ⌊k/2⌋
        // budget.
        let kl = r.k / 2;
        let stride = n.div_ceil(QUANTILE_SAMPLE);
        for &j in &dims {
            let col = &self.cols[j];
            let mut vals: Vec<f64> = r
                .slots
                .iter()
                .step_by(stride)
                .map(|&g| col[g as usize])
                .collect();
            let target = (vals.len() * kl / r.k).clamp(1, vals.len() - 1);
            let (_, &mut v, _) = vals.select_nth_unstable_by(target, f64::total_cmp);
            // The two cell boundaries bracketing the quantile value v:
            // the upper one keeps v (a real point of the region) on the
            // left, so the left side is non-empty by construction; the
            // lower one keeps v on the right, so the right side is. Only
            // a region whose points all share one ε-column in dimension j
            // rejects both.
            let c = ((v - self.gmin[j]) / self.epsilon).floor();
            for b in [
                self.gmin[j] + (c + 1.0) * self.epsilon,
                self.gmin[j] + c * self.epsilon,
            ] {
                // Count first (a branch-free reduction the compiler can
                // vectorize), fill only once the boundary is known good:
                // the coordinate test is a coin flip near the quantile,
                // and a predicted branch per point costs more than the
                // whole count.
                let lcnt: usize = r
                    .slots
                    .iter()
                    .map(|&g| (col[g as usize] < b) as usize)
                    .sum();
                if lcnt == 0 || lcnt == n {
                    continue;
                }
                // Single output buffer, branch-free cursor select: left
                // side fills from the front, right side from `lcnt`.
                // Point order (ascending global id) is preserved on both
                // sides.
                let mut buf = vec![0u32; n];
                let (mut li, mut ri) = (0usize, lcnt);
                for &g in &r.slots {
                    let is_left = (col[g as usize] < b) as usize;
                    let idx = if is_left == 1 { li } else { ri };
                    buf[idx] = g;
                    li += is_left;
                    ri += 1 - is_left;
                }
                let right = buf.split_off(lcnt);
                return Some((j, b, buf, right));
            }
        }
        None
    }
}

/// Sample cap for the balance-quantile estimate: larger regions stride-
/// sample this many coordinates instead of selecting over all of them.
/// The cut snaps to an ε-grid boundary anyway, so quantile precision
/// beyond a fraction of a percent buys nothing.
const QUANTILE_SAMPLE: usize = 4_096;

fn whole_shard(data: &Dataset) -> Shard {
    Shard {
        id: 0,
        lo: vec![f64::NEG_INFINITY; data.dim()],
        hi: vec![f64::INFINITY; data.dim()],
        data: data.clone(),
        owned: data.len(),
        global_ids: (0..data.len() as u32).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_datasets::synthetic::{clustered, uniform};

    #[test]
    fn ownership_partitions_the_dataset() {
        let data = uniform(3, 3000, 11);
        let part = partition(&data, 5.0, 4).unwrap();
        assert!(part.shards.len() >= 2, "uniform 3-D data should cut");
        let mut owned: Vec<u32> = part
            .shards
            .iter()
            .flat_map(|s| s.global_ids[..s.owned].iter().copied())
            .collect();
        owned.sort_unstable();
        assert_eq!(owned, (0..3000u32).collect::<Vec<_>>());
        assert_eq!(part.owned_points(), 3000);
    }

    #[test]
    fn owns_matches_the_assignment() {
        let data = uniform(2, 2000, 12);
        let part = partition(&data, 2.0, 6).unwrap();
        for (g, p) in data.iter().enumerate() {
            let owners: Vec<usize> = part
                .shards
                .iter()
                .filter(|s| s.owns(p))
                .map(|s| s.id)
                .collect();
            assert_eq!(owners.len(), 1, "point {g} owned by {owners:?}");
            let s = &part.shards[owners[0]];
            assert!(s.global_ids[..s.owned].contains(&(g as u32)));
        }
    }

    #[test]
    fn shard_data_matches_global_coordinates() {
        let data = uniform(2, 800, 12);
        let part = partition(&data, 4.0, 3).unwrap();
        for s in &part.shards {
            assert_eq!(s.data.len(), s.global_ids.len());
            for (local, &g) in s.global_ids.iter().enumerate() {
                assert_eq!(s.data.point(local), data.point(g as usize));
            }
        }
    }

    #[test]
    fn halo_contains_every_near_boundary_foreign_point() {
        // For every shard, every foreign point inside the ε-widened box
        // must appear as a ghost.
        let data = uniform(2, 2000, 13);
        let eps = 3.0;
        let part = partition(&data, eps, 4).unwrap();
        for s in &part.shards {
            let present: std::collections::HashSet<u32> = s.global_ids.iter().copied().collect();
            for (g, p) in data.iter().enumerate() {
                if s.in_halo(p, eps) {
                    assert!(
                        present.contains(&(g as u32)),
                        "point {g} missing from halo of shard {}",
                        s.id
                    );
                }
            }
        }
    }

    #[test]
    fn owned_points_lie_inside_their_box() {
        let data = uniform(2, 1500, 14);
        let part = partition(&data, 2.0, 5).unwrap();
        for s in &part.shards {
            for local in 0..s.owned {
                assert!(s.owns(s.data.point(local)), "shard {} box violated", s.id);
            }
        }
    }

    #[test]
    fn cuts_are_grid_aligned_in_every_dimension() {
        let data = uniform(2, 2000, 15);
        let eps = 2.5;
        let part = partition(&data, eps, 4).unwrap();
        let mins = data.min_per_dim().unwrap();
        for s in &part.shards {
            for (j, &m) in mins.iter().enumerate() {
                for b in [s.lo[j], s.hi[j]] {
                    if b.is_finite() {
                        let k = (b - (m - eps)) / eps;
                        assert!(
                            (k - k.round()).abs() < 1e-9,
                            "bound {b} (dim {j}) is not a cell boundary (k = {k})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn kd_cuts_use_multiple_dimensions() {
        // A square uniform cloud split 4 ways should cut both dimensions
        // (2×2 boxes), not stack 4 slabs along one axis.
        let data = uniform(2, 4000, 20);
        let part = partition(&data, 1.0, 4).unwrap();
        assert_eq!(part.shards.len(), 4);
        let mut dims = part.cut_dims.clone();
        dims.sort_unstable();
        dims.dedup();
        assert_eq!(dims, vec![0, 1], "cuts: {:?}", part.cut_dims);
    }

    #[test]
    fn boxes_ghost_less_than_slabs_at_high_shard_counts() {
        // The tentpole claim in miniature: at 8 shards on square data the
        // kd boxes (4×2) replicate far less than 8 slabs would. The slab
        // ghost fraction for width-w slabs is ~2ε/w per internal face;
        // assert the kd partition stays under the slab bound.
        let data = uniform(2, 20_000, 21);
        let eps = 1.0;
        let part = partition(&data, eps, 8).unwrap();
        assert_eq!(part.shards.len(), 8);
        // 8 slabs over a 100-unit extent: width 12.5, interior slabs see
        // two ε bands ≈ 2·1/12.5 = 16% each ⇒ ~14% overall. The 4×2 kd
        // grid halves one direction's face count; expect clearly less.
        assert!(
            part.ghost_fraction() < 0.14,
            "kd ghost fraction {:.3} not better than slabs",
            part.ghost_fraction()
        );
    }

    #[test]
    fn single_shard_has_no_ghosts() {
        let data = uniform(2, 500, 16);
        let part = partition(&data, 1.0, 1).unwrap();
        assert_eq!(part.shards.len(), 1);
        assert_eq!(part.shards[0].ghosts(), 0);
        assert_eq!(part.shards[0].owned, 500);
        assert!(part.cut_dims.is_empty());
    }

    #[test]
    fn empty_dataset_yields_one_empty_shard() {
        let part = partition(&Dataset::new(3), 1.0, 4).unwrap();
        assert_eq!(part.shards.len(), 1);
        assert_eq!(part.shards[0].data.len(), 0);
        assert_eq!(part.ghost_points(), 0);
        assert_eq!(part.ghost_fraction(), 0.0);
    }

    #[test]
    fn narrow_data_degrades_to_fewer_shards() {
        // All points inside one ε cell in every dimension: no valid cut.
        let mut d = Dataset::new(2);
        for i in 0..100 {
            d.push(&[5.0 + (i as f64) * 1e-4, 5.0 + (i as f64) * 1e-4]);
        }
        let part = partition(&d, 10.0, 8).unwrap();
        assert_eq!(part.shards.len(), 1);
    }

    #[test]
    fn equal_count_cuts_balance_owned_points() {
        let data = uniform(2, 4000, 17);
        let part = partition(&data, 1.0, 4).unwrap();
        assert_eq!(part.shards.len(), 4);
        for s in &part.shards {
            assert!(
                s.owned >= 500 && s.owned <= 2000,
                "shard owns {} of 4000",
                s.owned
            );
        }
    }

    #[test]
    fn skewed_data_still_partitions_exhaustively() {
        let data = clustered(2, 3000, 3, 1.0, 0.05, 18);
        let part = partition(&data, 0.5, 4).unwrap();
        assert_eq!(part.owned_points(), 3000);
        assert!(!part.shards.is_empty());
    }

    #[test]
    fn invalid_epsilon_rejected() {
        let data = uniform(2, 10, 19);
        assert!(matches!(
            partition(&data, 0.0, 2),
            Err(GridBuildError::InvalidEpsilon(_))
        ));
        assert!(matches!(
            partition(&data, f64::NAN, 2),
            Err(GridBuildError::InvalidEpsilon(_))
        ));
    }

    #[test]
    fn sample_pass_is_lane_invariant() {
        let data = uniform(3, 5000, 50);
        let base = sample_pass(&data, 1).unwrap();
        for lanes in [2, 3, 7, 16] {
            let sp = sample_pass(&data, lanes).unwrap();
            assert_eq!(sp.ids, base.ids, "lanes = {lanes}");
            assert_eq!(sp.cols, base.cols, "lanes = {lanes}");
            assert_eq!(sp.dmin, base.dmin);
            assert_eq!(sp.dmax, base.dmax);
        }
        assert_eq!(base.dmin, data.min_per_dim().unwrap());
    }

    #[test]
    fn staged_build_equals_partition_par() {
        // The wrapper and the staged calls must produce the same shards.
        let data = clustered(2, 4000, 3, 1.0, 0.07, 51);
        let eps = 0.6;
        let whole = partition_par(&data, eps, 6, 4).unwrap();
        let sp = sample_pass(&data, 4).unwrap();
        let cuts = build_cuts(&sp, eps, 6, 4).unwrap();
        let staged = materialize(&data, &cuts, 4).unwrap();
        assert_eq!(staged.cut_dims, whole.cut_dims);
        assert_eq!(staged.shards.len(), whole.shards.len());
        for (a, b) in staged.shards.iter().zip(&whole.shards) {
            assert_eq!(a.global_ids, b.global_ids);
            assert_eq!(a.owned, b.owned);
            assert_eq!(a.lo, b.lo);
            assert_eq!(a.hi, b.hi);
        }
    }

    #[test]
    fn cut_tree_assignment_matches_shard_boxes() {
        let data = uniform(2, 3000, 52);
        let sp = sample_pass(&data, 2).unwrap();
        let cuts = build_cuts(&sp, 1.5, 8, 2).unwrap();
        let part = materialize(&data, &cuts, 2).unwrap();
        for p in data.iter() {
            let leaf = cuts.leaf_of(p);
            assert!(part.shards[leaf].owns(p));
        }
    }

    #[test]
    fn lane_budget_only_changes_the_charge() {
        // The recursion's fan-out budget must not change the tree, and a
        // wider budget must never be charged more than the serial build
        // of the *same measured walls*. (Walls are measured per call, so
        // compare shape, not exact times.)
        let data = uniform(4, 6000, 53);
        let sp = sample_pass(&data, 1).unwrap();
        let serial = build_cuts(&sp, 8.0, 16, 1).unwrap();
        let fanned = build_cuts(&sp, 8.0, 16, 8).unwrap();
        assert_eq!(serial.cut_dims, fanned.cut_dims);
        assert_eq!(serial.num_leaves(), fanned.num_leaves());
    }
}
