//! Cost-based shard→device assignment.
//!
//! Longest-processing-time (LPT) greedy: shards are placed heaviest-first
//! onto the currently least-loaded device. LPT's makespan is within 4/3
//! of optimal, which is ample here — prediction error dominates. The
//! partitioner over-decomposes (more shards than devices) precisely so
//! this stage has freedom to balance skewed costs.

/// The result of scheduling shards onto a device pool.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Assignment {
    /// Per-device shard queues (`queues[d]` lists shard indices, in
    /// descending cost order).
    pub queues: Vec<Vec<usize>>,
    /// Per-device predicted load (sum of assigned costs).
    pub predicted_load: Vec<u64>,
}

impl Assignment {
    /// Device assigned to shard `s`.
    pub fn device_of(&self, s: usize) -> Option<usize> {
        self.queues.iter().position(|q| q.contains(&s))
    }

    /// Ratio of the heaviest to the mean device load (1.0 = perfectly
    /// balanced). Empty loads count as balanced.
    pub fn imbalance(&self) -> f64 {
        let max = self.predicted_load.iter().copied().max().unwrap_or(0);
        let sum: u64 = self.predicted_load.iter().sum();
        if sum == 0 {
            return 1.0;
        }
        max as f64 * self.predicted_load.len() as f64 / sum as f64
    }
}

/// Assigns `costs.len()` shards to `devices` devices by LPT. Deterministic:
/// ties break toward the lower shard index and the lower device index.
///
/// # Panics
///
/// Panics if `devices == 0`.
pub fn lpt_schedule(costs: &[u64], devices: usize) -> Assignment {
    assert!(devices > 0, "need at least one device");
    let mut order: Vec<usize> = (0..costs.len()).collect();
    order.sort_by_key(|&s| (std::cmp::Reverse(costs[s]), s));
    let mut queues = vec![Vec::new(); devices];
    let mut load = vec![0u64; devices];
    for s in order {
        let d = (0..devices).min_by_key(|&d| (load[d], d)).unwrap();
        queues[d].push(s);
        load[d] += costs[s];
    }
    Assignment {
        queues,
        predicted_load: load,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_shard_assigned_exactly_once() {
        let a = lpt_schedule(&[5, 3, 8, 1, 9, 2], 3);
        let mut all: Vec<usize> = a.queues.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(a.predicted_load.iter().sum::<u64>(), 28);
    }

    #[test]
    fn skewed_costs_balance_better_than_count() {
        // One giant shard and seven tiny ones on two devices: count-based
        // round-robin would put 4 shards on each (loads 103 vs 4); LPT
        // isolates the giant.
        let costs = [100, 1, 1, 1, 1, 1, 1, 1];
        let a = lpt_schedule(&costs, 2);
        assert_eq!(a.predicted_load.iter().copied().max().unwrap(), 100);
        assert_eq!(a.predicted_load.iter().copied().min().unwrap(), 7);
        assert_eq!(a.device_of(0), Some(0));
    }

    #[test]
    fn single_device_takes_everything() {
        let a = lpt_schedule(&[4, 2, 6], 1);
        assert_eq!(a.queues.len(), 1);
        assert_eq!(a.queues[0], vec![2, 0, 1]); // descending cost order
        assert_eq!(a.predicted_load, vec![12]);
    }

    #[test]
    fn more_devices_than_shards_leaves_idle_devices() {
        let a = lpt_schedule(&[7, 3], 4);
        assert_eq!(a.queues.iter().filter(|q| q.is_empty()).count(), 2);
        assert_eq!(a.imbalance(), 7.0 * 4.0 / 10.0);
    }

    #[test]
    fn deterministic_under_ties() {
        let a = lpt_schedule(&[5, 5, 5, 5], 2);
        let b = lpt_schedule(&[5, 5, 5, 5], 2);
        assert_eq!(a, b);
        assert_eq!(a.imbalance(), 1.0);
    }

    #[test]
    fn empty_shard_list_is_fine() {
        let a = lpt_schedule(&[], 2);
        assert!(a.queues.iter().all(Vec::is_empty));
        assert_eq!(a.imbalance(), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn zero_devices_rejected() {
        let _ = lpt_schedule(&[1], 0);
    }
}
