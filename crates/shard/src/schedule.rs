//! Cost-based shard→device assignment.
//!
//! Longest-processing-time (LPT) greedy: shards are placed heaviest-first
//! onto the currently least-loaded device. LPT's makespan is within 4/3
//! of optimal, which is ample here — prediction error dominates. The
//! partitioner over-decomposes (more shards than devices) precisely so
//! this stage has freedom to balance skewed costs.

/// The result of scheduling shards onto a device pool.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Assignment {
    /// Per-device shard queues (`queues[d]` lists shard indices, in
    /// descending cost order).
    pub queues: Vec<Vec<usize>>,
    /// Per-device predicted load (sum of assigned costs).
    pub predicted_load: Vec<u64>,
}

impl Assignment {
    /// Device assigned to shard `s`.
    pub fn device_of(&self, s: usize) -> Option<usize> {
        self.queues.iter().position(|q| q.contains(&s))
    }

    /// Ratio of the heaviest to the mean device load (1.0 = perfectly
    /// balanced). Empty loads count as balanced.
    pub fn imbalance(&self) -> f64 {
        let max = self.predicted_load.iter().copied().max().unwrap_or(0);
        let sum: u64 = self.predicted_load.iter().sum();
        if sum == 0 {
            return 1.0;
        }
        max as f64 * self.predicted_load.len() as f64 / sum as f64
    }
}

/// Assigns `costs.len()` shards to `devices` devices by LPT. Deterministic:
/// ties break toward the lower shard index and the lower device index.
///
/// # Panics
///
/// Panics if `devices == 0`.
pub fn lpt_schedule(costs: &[u64], devices: usize) -> Assignment {
    assert!(devices > 0, "need at least one device");
    let mut order: Vec<usize> = (0..costs.len()).collect();
    order.sort_by_key(|&s| (std::cmp::Reverse(costs[s]), s));
    let mut queues = vec![Vec::new(); devices];
    let mut load = vec![0u64; devices];
    for s in order {
        let d = (0..devices).min_by_key(|&d| (load[d], d)).unwrap();
        queues[d].push(s);
        load[d] += costs[s];
    }
    Assignment {
        queues,
        predicted_load: load,
    }
}

/// Modeled completion time of an assignment — the quantity the
/// shard-count chooser minimizes. `stages[s]` is shard `s`'s
/// `(host, device)` stage pair: the host stage (grid build, done by the
/// executor task's thread) and the modeled device stage (upload + join).
/// Within a queue the two resources pipeline, exactly like the batching
/// scheme's transfer/kernel overlap: the host builds shard `i+1`'s grid
/// while the device crunches shard `i`, so a queue finishes at
///
/// ```text
/// host_i = Σ_{j≤i} host_j;   dev_i = max(host_i, dev_{i−1}) + device_i
/// ```
///
/// Queues run concurrently across devices; the busiest queue bounds the
/// whole. Over-decomposing (more shards than devices) therefore *hides*
/// grid-build time behind device work — one of the reasons the chooser
/// often prefers it.
pub fn modeled_makespan(
    assign: &Assignment,
    stages: &[(std::time::Duration, std::time::Duration)],
) -> std::time::Duration {
    use std::time::Duration;
    assign
        .queues
        .iter()
        .map(|q| {
            let mut host = Duration::ZERO;
            let mut dev = Duration::ZERO;
            for &s in q {
                let (h, d) = stages[s];
                host += h;
                dev = host.max(dev) + d;
            }
            dev
        })
        .max()
        .unwrap_or(Duration::ZERO)
}

/// Picks the winning shard count from the chooser's candidate table
/// (`(shard_count, modeled objective)` pairs): the minimum objective,
/// with exact ties broken toward the **smaller** shard count — fewer
/// shards mean less ghost surface and a smaller partition to build, so
/// when the model can't tell candidates apart the cheaper-to-make one
/// wins. Deterministic for any input order; `None` on an empty table.
pub fn argmin_shard_count(candidates: &[(usize, std::time::Duration)]) -> Option<usize> {
    candidates
        .iter()
        .min_by(|a, b| a.1.cmp(&b.1).then(a.0.cmp(&b.0)))
        .map(|&(k, _)| k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn makespan_is_the_busiest_queue() {
        use std::time::Duration;
        // Pure device stages (no host stage): the pipeline degenerates to
        // per-queue sums and the makespan is the busiest queue.
        let stages: Vec<(Duration, Duration)> = [5u64, 3, 8, 1]
            .iter()
            .map(|&m| (Duration::ZERO, Duration::from_millis(m)))
            .collect();
        let a = lpt_schedule(&[5, 3, 8, 1], 2);
        // LPT: 8 alone (8ms), then 5+3+1 on the other (9ms).
        assert_eq!(modeled_makespan(&a, &stages), Duration::from_millis(9));
        let serial = lpt_schedule(&[5, 3, 8, 1], 1);
        assert_eq!(
            modeled_makespan(&serial, &stages),
            Duration::from_millis(17)
        );
    }

    #[test]
    fn makespan_overlaps_host_and_device_stages() {
        use std::time::Duration;
        let ms = Duration::from_millis;
        // One queue of two identical shards (host 4, device 6): shard 1's
        // grid build (done at t=8) hides entirely under shard 0's device
        // stage (runs 4..10), so the queue finishes at 16, not 20.
        let stages = vec![(ms(4), ms(6)), (ms(4), ms(6))];
        let a = lpt_schedule(&[10, 10], 1);
        assert_eq!(modeled_makespan(&a, &stages), ms(16));
        // Host-bound queue: device stages (1) hide under grid builds (4);
        // the last join starts when its grid lands at 8 and ends at 9.
        let stages = vec![(ms(4), ms(1)), (ms(4), ms(1))];
        assert_eq!(modeled_makespan(&a, &stages), ms(9));
    }

    #[test]
    fn every_shard_assigned_exactly_once() {
        let a = lpt_schedule(&[5, 3, 8, 1, 9, 2], 3);
        let mut all: Vec<usize> = a.queues.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(a.predicted_load.iter().sum::<u64>(), 28);
    }

    #[test]
    fn skewed_costs_balance_better_than_count() {
        // One giant shard and seven tiny ones on two devices: count-based
        // round-robin would put 4 shards on each (loads 103 vs 4); LPT
        // isolates the giant.
        let costs = [100, 1, 1, 1, 1, 1, 1, 1];
        let a = lpt_schedule(&costs, 2);
        assert_eq!(a.predicted_load.iter().copied().max().unwrap(), 100);
        assert_eq!(a.predicted_load.iter().copied().min().unwrap(), 7);
        assert_eq!(a.device_of(0), Some(0));
    }

    #[test]
    fn single_device_takes_everything() {
        let a = lpt_schedule(&[4, 2, 6], 1);
        assert_eq!(a.queues.len(), 1);
        assert_eq!(a.queues[0], vec![2, 0, 1]); // descending cost order
        assert_eq!(a.predicted_load, vec![12]);
    }

    #[test]
    fn more_devices_than_shards_leaves_idle_devices() {
        let a = lpt_schedule(&[7, 3], 4);
        assert_eq!(a.queues.iter().filter(|q| q.is_empty()).count(), 2);
        assert_eq!(a.imbalance(), 7.0 * 4.0 / 10.0);
    }

    #[test]
    fn deterministic_under_ties() {
        let a = lpt_schedule(&[5, 5, 5, 5], 2);
        let b = lpt_schedule(&[5, 5, 5, 5], 2);
        assert_eq!(a, b);
        assert_eq!(a.imbalance(), 1.0);
    }

    #[test]
    fn empty_shard_list_is_fine() {
        let a = lpt_schedule(&[], 2);
        assert!(a.queues.iter().all(Vec::is_empty));
        assert_eq!(a.imbalance(), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn zero_devices_rejected() {
        let _ = lpt_schedule(&[1], 0);
    }

    #[test]
    fn argmin_prefers_smaller_count_on_ties() {
        use std::time::Duration;
        let ms = Duration::from_millis;
        // Strict minimum wins regardless of position…
        assert_eq!(
            argmin_shard_count(&[(1, ms(9)), (4, ms(7)), (8, ms(8))]),
            Some(4)
        );
        // …and an exact tie goes to the smaller shard count, whatever
        // the table order.
        assert_eq!(
            argmin_shard_count(&[(8, ms(7)), (2, ms(7)), (4, ms(9))]),
            Some(2)
        );
        assert_eq!(
            argmin_shard_count(&[(2, ms(7)), (8, ms(7)), (4, ms(9))]),
            Some(2)
        );
        assert_eq!(argmin_shard_count(&[]), None);
    }
}
