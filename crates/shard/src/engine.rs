//! The sharded multi-device self-join engine.
//!
//! The engine is a **plan rewrite** over the shared join-plan IR
//! ([`grid_join::JoinPlan`]): the partition pass turns one logical join
//! into per-shard *subplans* — prebuilt shard index, precomputed cost
//! estimate, an emit-time ownership window, remapped post stage — and the
//! rest of the pipeline is scheduling and merging:
//!
//! fused sample pass → calibration ∥ speculative cut-tree builds →
//! choose shard count (modeled-response argmin) → materialize the chosen
//! partition → LPT scheduling → one executor task per device (rayon)
//! running its queue of subplans (shard grid build + join) through
//! [`grid_join::plan::execute`] → concatenating merge into the global
//! [`NeighborTable`].
//!
//! ## The parallel prelude
//!
//! Everything before the device streams used to be a fixed serial floor;
//! it now shrinks as devices are added. One streaming
//! [`crate::partition::sample_pass`] feeds *both* the kd recursion and
//! the cost calibration ([`crate::cost::calibrate_from_sample`]) — the
//! dataset is read once, chunked one lane per device. The candidate cut
//! trees are then built speculatively while calibration runs: with ≥ 2
//! devices the prelude charges `max(calibration, cut builds)` — the
//! calibration occupies one host lane and the recursion fans its
//! independent subtrees over the remaining `devices − 1`
//! ([`crate::partition::build_cuts`]) — instead of their sum. Only the
//! chosen tree is materialized against the full dataset.
//!
//! ## Shard-count choice
//!
//! More shards mean more devices busy but also more ε-halo replication
//! (every ghost point is uploaded, indexed and scanned twice) *and* a
//! more expensive partition to build. The engine prices the whole
//! trade-off instead of guessing: the calibration sample is partitioned
//! at every candidate count (1, the powers of two up to `devices ×
//! shards_per_device`, and the device count itself), each candidate's
//! shards are cost-projected ghost-inclusive
//! ([`crate::cost::project_scaled`]) and LPT-scheduled, and the modeled
//! device makespan is summed with the candidate's measured cut-tree
//! build, its modeled materialize cost
//! ([`crate::cost::modeled_partition_cost`]) and the calibration cost.
//! The candidate with the smallest modeled *response* wins, exact ties
//! breaking toward fewer shards
//! ([`crate::schedule::argmin_shard_count`]) — so 8 devices are only
//! *used* when the ghost-plus-build tax is worth it. An explicit
//! [`ShardedConfig::num_shards`] bypasses the chooser.
//!
//! The chooser's absolute projections are kept honest by a closed loop:
//! every run feeds its (projected, measured) stream-makespan pair to the
//! cost-model audit and to [`crate::cost::eval_correction`], which
//! multiplies subsequent calibrations' `eval_cost` so the projection
//! error stays inside the audited band instead of re-diverging.
//!
//! ## Ownership fusion
//!
//! Shard-local point ids place the owned points first, so the ownership
//! filter is the window `[0, owned)` — fused into the kernels via
//! [`grid_join::plan::JoinPlan::owned_prefix`], which drops ghost-keyed
//! pairs at emit time (one comparison before the result reservation).
//! Ghost pairs are never materialized, downloaded or post-filtered, and
//! since the ownership windows of different shards cover disjoint global
//! id sets, the merge degenerates to concatenation (debug builds still
//! run the counting-sort dedup and assert it found nothing). The
//! [`HotPath::PerThread`] ablation path keeps the classic post-pass
//! filter + dedup merge so the fused/post-pass configurations stay
//! comparable.
//!
//! ## Timing model
//!
//! Every simulated device executes its kernels on the *host's* cores, and
//! the device time model (`DeviceSpec::throughput_vs_host_core`) converts
//! a launch's aggregate host work into modeled device time assuming the
//! launch had the full host to itself. Running two simulated devices'
//! kernels simultaneously would violate that assumption and double-count
//! host throughput, so the executor serializes *kernel execution* across
//! device tasks with a substrate lock (remapping and merging still
//! overlap). Cross-device concurrency is then modeled exactly the way the
//! batching scheme models transfer overlap: each device's modeled busy
//! time accumulates independently, and the engine's modeled response time
//! takes the **maximum** over devices — the busiest device bounds
//! completion, just as a real multi-GPU driver would observe.

use crate::cost::{
    calibrate_from_sample, eval_correction, grid_correction, modeled_partition_cost,
    project_partition, project_scaled, CostModel, ShardCost,
};
use crate::partition::{
    build_cuts, materialize, partition, partition_par, CutTree, Partition, SamplePass,
};
use crate::schedule::{argmin_shard_count, lpt_schedule, modeled_makespan, Assignment};
use grid_join::plan::{execute, Backend, JoinPlan};
use grid_join::{GridIndex, HotPath, NeighborTable, Pair, SelfJoinConfig, SelfJoinError};
use parking_lot::Mutex;
use rayon::prelude::*;
use sim_gpu::{DevicePool, DeviceTally, PoolProfiler};
use sj_datasets::Dataset;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Chooser verdict: the winning shard count, its projected partition
/// build cost (for the `shard_partition` audit), and the full
/// `(candidate, modeled response)` table for the report.
type ChosenShards = (usize, Duration, Vec<(usize, Duration)>);

/// Upper bound on re-execution rounds after device faults: each round
/// re-runs every still-failed shard on the least-loaded surviving device,
/// so `devices + 1` rounds tolerate a cascade that downs every device but
/// one, plus one round of transient flake on the survivor.
fn max_reexec_rounds(ndev: usize) -> usize {
    ndev + 1
}

/// Configuration of the sharded engine.
#[derive(Clone, Copy, Debug)]
pub struct ShardedConfig {
    /// Upper bound on shards per device for the shard-count chooser
    /// (default 2): candidates range over 1 ..= devices × this. Over-
    /// decomposition gives the cost-based scheduler freedom to balance
    /// skew at the price of more halo replication — the chooser decides
    /// whether that price pays.
    pub shards_per_device: usize,
    /// Explicit total shard count (disables the chooser).
    pub num_shards: Option<usize>,
    /// Per-shard join configuration (UNICOMP on by default, as in the
    /// paper's best configuration).
    pub join: SelfJoinConfig,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        Self {
            shards_per_device: 2,
            num_shards: None,
            join: SelfJoinConfig::default(),
        }
    }
}

/// Execution record of one shard.
#[derive(Clone, Debug)]
pub struct ShardRunReport {
    /// Shard index within the partition.
    pub shard: usize,
    /// Device that executed it.
    pub device: usize,
    /// Owned points.
    pub owned: usize,
    /// Halo ghost points.
    pub ghosts: usize,
    /// Scheduler's projected cost (modeled nanoseconds).
    pub predicted_cost: u64,
    /// Directed pairs this shard contributed (ownership applied).
    pub actual_pairs: u64,
    /// Ghost-keyed pairs dropped by the *post-pass* ownership filter —
    /// zero on the fused path, where they are never materialized.
    pub dropped_ghost_pairs: u64,
    /// Result batches the shard's join executed.
    pub batches: usize,
    /// H2D bytes attributable to uploading this shard's ghost points.
    pub ghost_h2d_bytes: usize,
    /// Modeled device time of the shard's pipeline (grid build + upload +
    /// kernels + drains, pipelined).
    pub modeled: Duration,
    /// Modeled H2D engine busy time of the shard (the upload phase of
    /// the per-phase breakdown).
    pub modeled_upload: Duration,
    /// Modeled kernel-engine busy time of the shard: estimation, hoist
    /// and join kernels.
    pub modeled_kernel: Duration,
    /// Host wall time of the shard's pipeline.
    pub wall: Duration,
}

/// Execution report of a sharded join.
#[derive(Clone, Debug)]
pub struct ShardedReport {
    /// Dimensions the kd partitioner cut across, in cut order.
    pub cut_dims: Vec<usize>,
    /// Per-shard execution records, in shard order.
    pub shards: Vec<ShardRunReport>,
    /// Per-device aggregated usage (kernel launches, modeled busy time,
    /// transfer bytes incl. the ghost share), in device order.
    pub devices: Vec<DeviceTally>,
    /// Predicted per-device load the scheduler balanced.
    pub predicted_load: Vec<u64>,
    /// `(shard count, modeled response objective)` for every candidate
    /// the chooser priced (empty when `num_shards` was explicit). The
    /// objective is the candidate's LPT device makespan plus its
    /// partition build cost (measured cut tree + modeled materialize)
    /// plus the calibration cost — see the module docs.
    pub candidate_makespans: Vec<(usize, Duration)>,
    /// Total halo ghost points (replication overhead).
    pub ghost_points: usize,
    /// Modeled time of the fused bounds/sample streaming pass (slowest
    /// of the per-device lanes) — shared by partitioning and
    /// calibration.
    pub sample_time: Duration,
    /// Wall time of the cost-model calibration, *excluding* the shared
    /// sample pass.
    pub calibrate_time: Duration,
    /// Modeled time of the speculative candidate cut-tree builds
    /// (lane-budgeted critical path, summed over candidates) that run
    /// overlapped with calibration when ≥ 2 devices are present.
    pub cut_time: Duration,
    /// Wall time of the shard-count chooser's pricing loop.
    pub choose_time: Duration,
    /// Modeled time of the chosen partition's build: the sample pass,
    /// its cut tree and the chunked materialize passes, one lane per
    /// device (see `sj_shard::partition`).
    pub partition_time: Duration,
    /// Modeled end-to-end prelude ahead of the device streams: sample
    /// pass + (calibration overlapped with the cut builds) + chooser +
    /// materialize. This is what `modeled_total` charges before the
    /// busiest stream; it *shrinks* as devices are added.
    pub prelude_time: Duration,
    /// The scheduler's projected busiest-stream makespan for the
    /// executed partition (what the cost-model audit compares against
    /// [`Self::measured_stream`]).
    pub projected_stream: Duration,
    /// Measured busiest device stream of the run.
    pub measured_stream: Duration,
    /// Wall time of the per-shard host index builds (summed across
    /// device tasks; they overlap in wall time).
    pub index_build_time: Duration,
    /// Wall time of the parallel execution phase.
    pub execute_time: Duration,
    /// Wall time of the merge (pure concatenation-order table build on
    /// the fused path; sort + dedup on the ablation path).
    pub merge_time: Duration,
    /// End-to-end host wall time.
    pub total: Duration,
    /// Modeled multi-device response time: the parallel prelude
    /// ([`Self::prelude_time`]) plus the busiest device stream
    /// (per-shard grid build + pipelined join timeline; devices run
    /// concurrently so the maximum bounds completion). Matches the
    /// single-device `JoinReport::modeled_total` convention, which
    /// likewise excludes host-side table/merge construction.
    pub modeled_total: Duration,
    /// Duplicate pairs removed by the merge. Exclusive pair ownership
    /// makes this 0; on the fused path duplicates are structurally
    /// impossible and release builds skip the check entirely.
    pub duplicates_merged: u64,
    /// Device-fault events that interrupted a shard during this run
    /// (injected crashes and transient upload/launch failures).
    pub device_faults: u64,
    /// Shard executions re-run on a surviving device after a fault. Every
    /// pair still comes from exactly one *successful* shard execution —
    /// failed attempts contribute nothing to the merge, and the disjoint
    /// ownership windows make the re-run bit-identical to what the failed
    /// device would have produced.
    pub reexecuted_shards: usize,
}

impl ShardedReport {
    /// Ghost points as a fraction of owned points.
    pub fn ghost_fraction(&self) -> f64 {
        let owned: usize = self.shards.iter().map(|s| s.owned).sum();
        if owned == 0 {
            0.0
        } else {
            self.ghost_points as f64 / owned as f64
        }
    }

    /// Total H2D bytes spent uploading ghost points, across devices.
    pub fn ghost_h2d_bytes(&self) -> usize {
        self.devices.iter().map(|t| t.ghost_h2d_bytes).sum()
    }
}

/// Output of a sharded self-join.
#[derive(Clone, Debug)]
pub struct ShardedOutput {
    /// Directed, self-excluded neighbour lists over the *global* point
    /// ids — pair-for-pair identical to a single-device join.
    pub table: NeighborTable,
    /// Timings, per-shard and per-device accounting.
    pub report: ShardedReport,
}

/// The sharded multi-device self-join operator.
#[derive(Clone, Debug)]
pub struct ShardedSelfJoin {
    pool: DevicePool,
    config: ShardedConfig,
}

impl ShardedSelfJoin {
    /// Creates the engine over an existing device pool.
    pub fn new(pool: DevicePool) -> Self {
        Self {
            pool,
            config: ShardedConfig::default(),
        }
    }

    /// Creates the engine over `devices` simulated TITAN X devices.
    pub fn titan_x(devices: usize) -> Self {
        Self::new(DevicePool::titan_x(devices))
    }

    /// Overrides the configuration.
    pub fn with_config(mut self, config: ShardedConfig) -> Self {
        self.config = config;
        self
    }

    /// Fixes the total shard count (disables the makespan chooser).
    pub fn with_shards(mut self, num_shards: usize) -> Self {
        self.config.num_shards = Some(num_shards);
        self
    }

    /// Overrides the per-shard join configuration (hot path, UNICOMP,
    /// launch geometry, batching tunables).
    pub fn with_join_config(mut self, join: SelfJoinConfig) -> Self {
        self.config.join = join;
        self
    }

    /// Selects the join hot path every shard runs (default
    /// [`HotPath::CellMajor`]).
    pub fn with_hot_path(mut self, path: HotPath) -> Self {
        self.config.join.hot_path = path;
        self
    }

    /// The device pool.
    pub fn pool(&self) -> &DevicePool {
        &self.pool
    }

    /// The active configuration.
    pub fn config(&self) -> &ShardedConfig {
        &self.config
    }

    /// Shard-count candidates: 1, the powers of two up to the cap, plus
    /// the device count and the cap themselves.
    fn shard_candidates(&self, ndev: usize) -> BTreeSet<usize> {
        let cap = (ndev * self.config.shards_per_device).max(1);
        let mut c: BTreeSet<usize> = [1, ndev.min(cap), cap].into();
        let mut k = 2;
        while k <= cap {
            c.insert(k);
            k *= 2;
        }
        c
    }

    /// Prices every candidate shard count on the calibration sample —
    /// modeled device makespan *plus* the cost of making the partition
    /// (the candidate's measured speculative cut-tree build, its modeled
    /// materialize passes, and the calibration) — and returns the
    /// modeled-response argmin (exact ties break toward fewer shards via
    /// [`argmin_shard_count`]), the winner's projected partition build
    /// cost (for the `shard_partition` audit) and the full candidate
    /// table for the report.
    fn choose_shard_count(
        &self,
        model: &CostModel,
        sp: &SamplePass,
        trees: &[(usize, CutTree)],
        ndev: usize,
    ) -> Result<ChosenShards, SelfJoinError> {
        let spec = self.pool.device(0).spec();
        let unicomp = self.config.join.unicomp;
        let scale = model.len as f64 / model.sample_data.len().max(1) as f64;
        let mut table = Vec::new();
        let mut build_costs = Vec::new();
        for (k, tree) in trees {
            let k = *k;
            let sample_part = partition(&model.sample_data, model.epsilon, k)?;
            let costs = project_scaled(model, &sample_part, scale, spec, unicomp);
            let assign = lpt_schedule(&costs.iter().map(ShardCost::cost).collect::<Vec<_>>(), ndev);
            let stages: Vec<(Duration, Duration)> =
                costs.iter().map(|c| (c.grid_time, c.device_time)).collect();
            let mk = modeled_makespan(&assign, &stages);
            let ghosts_scaled: f64 = costs.iter().map(|c| c.ghosts as f64).sum();
            let build = modeled_partition_cost(sp, tree.build_time, k, ndev, ghosts_scaled);
            table.push((k, mk + build + model.build_time));
            build_costs.push((k, build));
        }
        let chosen = argmin_shard_count(&table).unwrap_or(1);
        let chosen_build = build_costs
            .iter()
            .find(|&&(k, _)| k == chosen)
            .map(|&(_, b)| b)
            .unwrap_or(Duration::ZERO);
        Ok((chosen, chosen_build, table))
    }

    /// Runs the sharded self-join: all ordered pairs `(p, q)`, `p ≠ q`,
    /// with `dist(p, q) ≤ epsilon`, merged across all devices.
    pub fn run(&self, data: &Dataset, epsilon: f64) -> Result<ShardedOutput, SelfJoinError> {
        let t0 = Instant::now();
        let mut span = sj_obs::Span::enter("shard.run");
        span.label("n", data.len());
        span.label("epsilon", epsilon);
        let root_id = span.id();
        let modeled_start = if root_id != 0 {
            let c = sj_obs::trace::modeled_cursor();
            if c.is_nan() {
                0.0
            } else {
                c
            }
        } else {
            0.0
        };
        let ndev = self.pool.len();
        span.label("devices", ndev);
        let spec = self.pool.device(0).spec();

        // Fused prelude, stage 1: one chunked streaming read of the
        // dataset yields the kd recursion's stride sample *and* the
        // calibration's binned sample (one lane per device).
        let sp = crate::partition::sample_pass(data, ndev)?;
        let sample_time = sp.wall;

        // Stage 2, overlapped: the ghost-aware cost model calibrates
        // from the shared sample while the candidate cut trees build
        // speculatively on the remaining host lanes. Sequentially
        // executed (simulated lanes, like every host-parallel pass
        // here); with ≥ 2 devices the prelude charges the slower of the
        // two sides instead of their sum.
        let model = {
            let _cspan = sj_obs::Span::enter("shard.calibrate");
            calibrate_from_sample(&sp, epsilon, spec)?
        };
        let calibrate_time = model.build_time;

        let candidate_counts: Vec<usize> = match self.config.num_shards {
            Some(k) => vec![k.max(1)],
            None => self.shard_candidates(ndev).into_iter().collect(),
        };
        let cut_lanes = ndev.saturating_sub(1).max(1);
        let trees: Vec<(usize, CutTree)> = {
            let mut tspan = sj_obs::Span::enter("shard.cuts");
            tspan.label("candidates", candidate_counts.len());
            candidate_counts
                .iter()
                .map(|&k| Ok((k, build_cuts(&sp, epsilon, k, cut_lanes)?)))
                .collect::<Result<_, SelfJoinError>>()?
        };
        let cut_time: Duration = trees.iter().map(|(_, t)| t.build_time).sum();
        let overlap_time = if ndev >= 2 {
            calibrate_time.max(cut_time)
        } else {
            calibrate_time + cut_time
        };

        let tc = Instant::now();
        let mut chspan = sj_obs::Span::enter("shard.choose");
        let (num_shards, projected_build, candidate_makespans) = match self.config.num_shards {
            Some(k) => (k.max(1), Duration::ZERO, Vec::new()),
            None => self.choose_shard_count(&model, &sp, &trees, ndev)?,
        };
        chspan.label("chosen", num_shards);
        chspan.label("candidates", candidate_makespans.len());
        drop(chspan);
        let choose_time = tc.elapsed();

        // Stage 3: materialize only the winning tree against the full
        // dataset — the chunked passes are charged at their per-lane
        // makespan, one lane per device, matching the engine's
        // per-device stream convention.
        let chosen_tree = trees
            .into_iter()
            .find(|(k, _)| *k == num_shards)
            .map(|(_, t)| t)
            .expect("the chosen count came from the candidate list");
        let mut part = materialize(data, &chosen_tree, ndev)?;
        let materialize_time = part.build_time;
        // `Partition::build_time` keeps its historical meaning (the
        // whole partition build) for `partition_time` and downstream
        // consumers; the prelude accounting charges the shared sample
        // pass only once.
        part.build_time += sample_time + chosen_tree.build_time;
        let part = part;
        if self.config.num_shards.is_none() {
            // Closed loop on the partition-cost model: the chooser's
            // projected build cost vs what building the winner took.
            sj_obs::audit::record(
                "shard_partition",
                projected_build.as_secs_f64(),
                (chosen_tree.build_time + materialize_time).as_secs_f64(),
            );
        }
        let prelude_time = sample_time + overlap_time + choose_time + materialize_time;
        let costs = project_partition(&model, &part, spec, self.config.join.unicomp);

        let assignment: Assignment = {
            let mut sspan = sj_obs::Span::enter("shard.schedule");
            sspan.label("shards", costs.len());
            lpt_schedule(&costs.iter().map(ShardCost::cost).collect::<Vec<_>>(), ndev)
        };
        // The schedule's own makespan projection over the *actual*
        // partition — paired with the measured stream makespan below for
        // the cost-model audit.
        let projected_makespan = {
            let stages: Vec<(Duration, Duration)> =
                costs.iter().map(|c| (c.grid_time, c.device_time)).collect();
            modeled_makespan(&assignment, &stages)
        };

        // Fused path: ownership is an emit-time kernel window and the
        // merge is pure concatenation. The PerThread ablation keeps the
        // post-pass filter + dedup merge for comparison.
        let fused = self.config.join.hot_path == HotPath::CellMajor;

        // Parallel execution: one rayon task per device drains its queue
        // — building each shard's grid, then running the subplan — and
        // streams globally-remapped pairs into the shared merge
        // accumulator. The substrate lock serializes kernel execution
        // across devices (see module docs).
        let t2 = Instant::now();
        let profiler = PoolProfiler::new(ndev);
        let merged: Mutex<Vec<Pair>> = Mutex::new(Vec::new());
        let shard_reports: Mutex<Vec<Option<ShardRunReport>>> =
            Mutex::new(vec![None; part.shards.len()]);
        let index_build: Mutex<Duration> = Mutex::new(Duration::ZERO);
        let streams: Mutex<Vec<Duration>> = Mutex::new(vec![Duration::ZERO; ndev]);
        let substrate = Mutex::new(());
        let device_faults = AtomicU64::new(0);
        let failed_shards: Mutex<Vec<usize>> = Mutex::new(Vec::new());
        let last_fault: Mutex<Option<SelfJoinError>> = Mutex::new(None);
        // Device streams start on the modeled clock after the (now
        // lane-parallel) prelude.
        let prelude_secs = modeled_start + prelude_time.as_secs_f64();

        // One shard's full pipeline on one device — grid build, subplan
        // rewrite, batched execution, accounting, merge append. Shared by
        // the primary per-device pass and the fault re-execution rounds;
        // pairs reach the merge only on success, so a failed attempt
        // contributes nothing and a re-run can never duplicate. Returns
        // `(grid_build, device modeled time)`.
        let run_shard = |d: usize, s: usize| -> Result<(Duration, Duration), SelfJoinError> {
            let shard = &part.shards[s];
            let mut shspan = sj_obs::Span::enter("shard.shard");
            shspan.label("shard", s);
            shspan.label("owned", shard.owned);
            shspan.label("ghosts", shard.ghosts());
            let shard_cursor = if shspan.id() != 0 {
                sj_obs::trace::modeled_cursor()
            } else {
                f64::NAN
            };
            // The partition is the source of truth for the halo
            // geometry; index at its ε.
            let tg = Instant::now();
            let grid = GridIndex::build(&shard.data, part.epsilon)?;
            let grid_build = tg.elapsed();
            *index_build.lock() += grid_build;
            // The shard's host grid build occupies the stream
            // before the device pipeline starts.
            if !shard_cursor.is_nan() {
                sj_obs::trace::set_modeled_cursor(shard_cursor + grid_build.as_secs_f64());
            }

            // The shard's subplan: the rewrite of the logical
            // join restricted to this shard. Owned points are the
            // local prefix, so the ownership window is [0, owned)
            // — fused into the kernels on the hot path, a post
            // pass on the ablation path. Ids lift back to global.
            let base = self.subplan(&shard.data, &grid, costs[s].predicted_pairs);
            let subplan = if fused {
                base.owned_prefix(shard.owned)
            } else {
                base.scoped(shard.owned)
            }
            .remapped(&shard.global_ids);
            let out = {
                let _kernels = substrate.lock();
                execute(&subplan, Backend::Device(self.pool.device(d)))?
            };
            let mut pairs = out.pairs;
            let h2d = out.report.index_bytes + shard.data.len() * shard.data.dim() * 8;
            // Ghost share of the upload, attributed by point
            // count (ghosts and owned points cost the same bytes
            // in both the coordinates and the index).
            let ghost_h2d =
                ((h2d as f64 * shard.ghosts() as f64) / shard.data.len().max(1) as f64) as usize;
            profiler.record(
                d,
                &DeviceTally {
                    items: 1,
                    launches: out.report.batching.batches,
                    wall: out.report.device_pipeline,
                    // The host grid build is charged to the
                    // device stream that consumes it, matching
                    // the single-device modeled_total convention.
                    busy: grid_build + out.report.modeled_total,
                    h2d_bytes: h2d,
                    ghost_h2d_bytes: ghost_h2d,
                    d2h_bytes: out.report.batching.actual_pairs as usize
                        * std::mem::size_of::<Pair>(),
                },
            );
            shard_reports.lock()[s] = Some(ShardRunReport {
                shard: s,
                device: d,
                owned: shard.owned,
                ghosts: shard.ghosts(),
                predicted_cost: costs[s].cost(),
                actual_pairs: pairs.len() as u64,
                dropped_ghost_pairs: out.dropped_ghost_pairs,
                batches: out.report.batching.batches,
                ghost_h2d_bytes: ghost_h2d,
                modeled: grid_build + out.report.modeled_total,
                modeled_upload: out.report.batching.timeline.h2d_busy,
                modeled_kernel: out.report.batching.modeled_estimate_time
                    + out.report.batching.modeled_hoist_time
                    + out.report.batching.modeled_kernel_time,
                wall: out.report.total,
            });
            if !shard_cursor.is_nan() {
                shspan.set_modeled(
                    shard_cursor,
                    (grid_build + out.report.modeled_total).as_secs_f64(),
                );
            }
            merged.lock().append(&mut pairs);
            Ok((grid_build, out.report.modeled_total))
        };

        let device_runs: Vec<Result<(), SelfJoinError>> = (0..ndev)
            .into_par_iter()
            .map(|d| -> Result<(), SelfJoinError> {
                let mut dspan = sj_obs::Span::child_of(root_id, "shard.device");
                dspan.label("device", d);
                dspan.label("queue", assignment.queues[d].len());
                if dspan.id() != 0 {
                    sj_obs::trace::set_modeled_cursor(prelude_secs);
                }
                // Modeled device-stream clock: the executor thread's host
                // work (grid builds) and the device's modeled work
                // pipeline exactly as `modeled_makespan` prices them.
                let mut host_t = Duration::ZERO;
                let mut dev_t = Duration::ZERO;
                for (qi, &s) in assignment.queues[d].iter().enumerate() {
                    match run_shard(d, s) {
                        Ok((grid_build, modeled)) => {
                            host_t += grid_build;
                            dev_t = host_t.max(dev_t) + modeled;
                        }
                        Err(SelfJoinError::Fault(f)) => {
                            device_faults.fetch_add(1, Ordering::Relaxed);
                            *last_fault.lock() = Some(SelfJoinError::Fault(f));
                            let mut failed = failed_shards.lock();
                            if f.is_crash() {
                                // The device is down: its entire remaining
                                // queue moves to the survivors.
                                failed.extend(assignment.queues[d][qi..].iter().copied());
                                drop(failed);
                                break;
                            }
                            // Transient: only this shard failed; the rest
                            // of the queue keeps running here.
                            failed.push(s);
                        }
                        Err(e) => return Err(e),
                    }
                }
                dspan.set_modeled(prelude_secs, dev_t.as_secs_f64());
                streams.lock()[d] = dev_t;
                Ok(())
            })
            .collect();
        for r in device_runs {
            r?;
        }

        // Re-execution rounds: every failed shard re-runs on the
        // least-loaded *surviving* stream, bounded by `max_reexec_rounds`
        // — enough for a crash cascade that downs all devices but one.
        // The ownership windows make each re-run bit-identical to what
        // the failed device would have produced, so exactness is
        // untouched; only the stream makespan (and thus the modeled
        // response time) grows.
        let mut streams = streams.into_inner();
        let mut failed = {
            let mut f = failed_shards.into_inner();
            f.sort_unstable();
            f.dedup();
            f
        };
        let mut reexecuted = 0usize;
        let mut round = 0usize;
        while !failed.is_empty() {
            round += 1;
            self.pool.tick_health();
            let mask = self.pool.health_mask();
            let survivors: Vec<usize> = (0..ndev).filter(|&i| mask[i]).collect();
            if round > max_reexec_rounds(ndev) || survivors.is_empty() {
                // Out of retry budget (or out of devices): surface the
                // fault rather than loop forever on a dying pool.
                return Err(last_fault
                    .into_inner()
                    .expect("a shard only fails via a fault"));
            }
            let mut rspan = sj_obs::Span::enter("fault.reexec");
            rspan.label("round", round);
            rspan.label("shards", failed.len());
            let mut still_failed = Vec::new();
            for s in failed.drain(..) {
                let d = survivors
                    .iter()
                    .copied()
                    .min_by_key(|&i| streams[i])
                    .expect("survivors is non-empty");
                match run_shard(d, s) {
                    Ok((grid_build, modeled)) => {
                        streams[d] += grid_build + modeled;
                        reexecuted += 1;
                    }
                    Err(SelfJoinError::Fault(f)) => {
                        device_faults.fetch_add(1, Ordering::Relaxed);
                        *last_fault.lock() = Some(SelfJoinError::Fault(f));
                        still_failed.push(s);
                    }
                    Err(e) => return Err(e),
                }
            }
            failed = still_failed;
        }
        if reexecuted > 0 {
            sj_obs::registry()
                .counter("sj_shard_reexecutions_total", &[])
                .add(reexecuted as u64);
        }
        let execute_time = t2.elapsed();

        // Merge. Fused path: the per-shard ownership windows cover
        // disjoint global id sets, so concatenation is already the union
        // — debug builds re-run the counting-sort dedup purely to assert
        // the disjointness invariant. Ablation path: dedup merge as a
        // cheap runtime check of the post-pass filter.
        let t3 = Instant::now();
        let pairs = merged.into_inner();
        let (table, duplicates_merged) = if fused {
            if cfg!(debug_assertions) {
                let (table, dups) = NeighborTable::from_pairs_dedup(data.len(), &pairs);
                debug_assert_eq!(dups, 0, "fused ownership windows overlapped");
                (table, dups)
            } else {
                (NeighborTable::from_pairs(data.len(), &pairs), 0)
            }
        } else {
            NeighborTable::from_pairs_dedup(data.len(), &pairs)
        };
        let merge_time = t3.elapsed();

        let devices = profiler.snapshot();
        // Response-time convention matches the single-device
        // `JoinReport::modeled_total` (grid build + estimate + pipelined
        // device timeline): the serial prelude (calibration, chooser,
        // partition) plus the busiest device *stream* — per stream, grid
        // builds (host) pipeline with modeled device work exactly as the
        // chooser priced them. Host-side table construction is excluded
        // there and the host-side merge is excluded here (reported as
        // `merge_time`).
        let stream_makespan = streams.iter().copied().max().unwrap_or(Duration::ZERO);
        let modeled_total = prelude_time + stream_makespan;
        let index_build_time = index_build.into_inner();
        let shards: Vec<ShardRunReport> =
            shard_reports.into_inner().into_iter().flatten().collect();

        // Cost-model audit: the scheduler's projected makespan vs the
        // measured busiest-stream makespan of the run it scheduled.
        sj_obs::audit::record(
            "shard_chooser",
            projected_makespan.as_secs_f64(),
            stream_makespan.as_secs_f64(),
        );
        // Component-wise closed loops keep the next calibration inside
        // the audited band: the host-stage (grid build) projection is
        // steered by the measured per-shard index-build walls, the
        // device-stage projection by the modeled upload+kernel busy
        // time the executed batches reported. Each knob gets its own
        // measurement — a makespan-level loop on the eval knob alone
        // cannot fix a drifting grid projection (it would pin the eval
        // factor at its clamp and leave the aggregate error standing).
        let projected_grid: Duration = costs.iter().map(|c| c.grid_time).sum();
        let projected_device: Duration = costs.iter().map(|c| c.device_time).sum();
        let measured_device: Duration = shards
            .iter()
            .map(|s| s.modeled_upload + s.modeled_kernel)
            .sum();
        grid_correction().observe(data.dim(), projected_grid, index_build_time);
        eval_correction().observe(data.dim(), projected_device, measured_device);
        // Balance/replication gauges: busiest stream over mean busy
        // stream (1.0 = perfectly balanced), and halo replication as a
        // fraction of owned points.
        {
            let busy: Vec<f64> = streams
                .iter()
                .map(|s| s.as_secs_f64())
                .filter(|&s| s > 0.0)
                .collect();
            if !busy.is_empty() {
                let mean = busy.iter().sum::<f64>() / busy.len() as f64;
                let max = busy.iter().cloned().fold(0.0, f64::max);
                sj_obs::registry()
                    .gauge("sj_shard_stream_balance", &[])
                    .set(if mean > 0.0 { max / mean } else { 1.0 });
            }
            let owned: usize = shards.iter().map(|s| s.owned).sum();
            let ghosts = part.ghost_points();
            sj_obs::registry()
                .gauge("sj_shard_ghost_fraction", &[])
                .set(if owned == 0 {
                    0.0
                } else {
                    ghosts as f64 / owned as f64
                });
        }
        span.label("shards", shards.len());
        span.set_modeled(modeled_start, modeled_total.as_secs_f64());
        Ok(ShardedOutput {
            table,
            report: ShardedReport {
                cut_dims: part.cut_dims.clone(),
                shards,
                devices,
                predicted_load: assignment.predicted_load,
                candidate_makespans,
                ghost_points: part.ghost_points(),
                sample_time,
                calibrate_time,
                cut_time,
                choose_time,
                partition_time: part.build_time,
                prelude_time,
                projected_stream: projected_makespan,
                measured_stream: stream_makespan,
                index_build_time,
                execute_time,
                merge_time,
                total: t0.elapsed(),
                modeled_total,
                duplicates_merged,
                device_faults: device_faults.into_inner(),
                reexecuted_shards: reexecuted,
            },
        })
    }

    /// The per-shard subplan of the rewrite: the configured join over the
    /// shard's prebuilt index with its model-projected result estimate.
    /// `run` further applies the ownership window (fused or post-pass)
    /// and remaps ids to the global space.
    fn subplan<'a>(
        &self,
        shard_data: &'a Dataset,
        grid: &'a GridIndex,
        predicted_pairs: u64,
    ) -> JoinPlan<'a> {
        JoinPlan {
            exec: self.config.join.exec_options(),
            launch: self.config.join.launch,
            batching: self.config.join.batching,
            ..JoinPlan::on_grid(shard_data, grid)
        }
        .estimated(predicted_pairs)
    }

    /// Partitions without executing — exposed for inspection and tests.
    /// Uses the explicit shard count if set, else the chooser's cap
    /// (`devices × shards_per_device`) as an upper bound.
    pub fn plan(&self, data: &Dataset, epsilon: f64) -> Result<Partition, SelfJoinError> {
        let num_shards = self
            .config
            .num_shards
            .unwrap_or(self.pool.len() * self.config.shards_per_device)
            .max(1);
        Ok(partition_par(data, epsilon, num_shards, self.pool.len())?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grid_join::{host_self_join, GpuSelfJoin};
    use sj_datasets::synthetic::{clustered, uniform};

    #[test]
    fn matches_single_device_join_on_uniform_data() {
        let data = uniform(2, 3000, 31);
        let eps = 2.5;
        let sharded = ShardedSelfJoin::titan_x(4).run(&data, eps).unwrap();
        let single = GpuSelfJoin::default_device().run(&data, eps).unwrap();
        assert_eq!(sharded.table, single.table);
        assert_eq!(sharded.report.duplicates_merged, 0);
        assert_eq!(
            sharded.report.shards.iter().map(|s| s.owned).sum::<usize>(),
            data.len()
        );
    }

    #[test]
    fn matches_single_device_join_on_skewed_data() {
        let data = clustered(2, 2500, 4, 1.0, 0.08, 32);
        let eps = 0.9;
        let sharded = ShardedSelfJoin::titan_x(2).run(&data, eps).unwrap();
        let single = GpuSelfJoin::default_device().run(&data, eps).unwrap();
        assert_eq!(sharded.table, single.table);
        assert_eq!(sharded.report.duplicates_merged, 0);
    }

    #[test]
    fn matches_host_reference_in_higher_dimensions() {
        let data = uniform(4, 1500, 33);
        let eps = 16.0;
        let sharded = ShardedSelfJoin::titan_x(3).run(&data, eps).unwrap();
        let grid = GridIndex::build(&data, eps).unwrap();
        assert_eq!(sharded.table, host_self_join(&data, &grid));
    }

    #[test]
    fn work_spreads_across_devices() {
        let data = uniform(2, 4000, 34);
        let out = ShardedSelfJoin::titan_x(4)
            .with_shards(8)
            .run(&data, 2.0)
            .unwrap();
        let busy_devices = out.report.devices.iter().filter(|t| t.items > 0).count();
        assert!(busy_devices >= 2, "only {busy_devices} devices used");
        // With work spread over ≥2 devices, the busiest device's modeled
        // time is strictly below the serial sum.
        let total: Duration = out.report.devices.iter().map(|t| t.busy).sum();
        let makespan = out.report.devices.iter().map(|t| t.busy).max().unwrap();
        assert!(makespan < total);
        assert_eq!(
            out.report.shards.len(),
            out.report.devices.iter().map(|t| t.items).sum::<usize>()
        );
    }

    #[test]
    fn hot_paths_agree_through_sharding() {
        let data = clustered(2, 2200, 3, 1.0, 0.1, 40);
        let eps = 1.1;
        let cm = ShardedSelfJoin::titan_x(3)
            .with_hot_path(HotPath::CellMajor)
            .run(&data, eps)
            .unwrap();
        let pt = ShardedSelfJoin::titan_x(3)
            .with_hot_path(HotPath::PerThread)
            .run(&data, eps)
            .unwrap();
        assert_eq!(cm.table, pt.table);
        assert_eq!(cm.report.duplicates_merged, 0);
        assert_eq!(pt.report.duplicates_merged, 0);
        // Fused path never materializes ghost pairs; the ablation path
        // visibly filters them (ghosts exist whenever shards > 1).
        for s in &cm.report.shards {
            assert_eq!(s.dropped_ghost_pairs, 0);
        }
        if pt.report.shards.len() > 1 {
            assert!(pt.report.shards.iter().any(|s| s.dropped_ghost_pairs > 0));
        }
    }

    #[test]
    fn chooser_records_candidates_and_picks_min_makespan() {
        let data = uniform(2, 3000, 41);
        let out = ShardedSelfJoin::titan_x(4).run(&data, 2.0).unwrap();
        let cands = &out.report.candidate_makespans;
        assert!(!cands.is_empty(), "default config must run the chooser");
        assert!(cands.iter().any(|&(k, _)| k == 1));
        assert!(cands.iter().any(|&(k, _)| k == 8), "cap = 4 × 2 missing");
        let best = cands.iter().map(|&(_, m)| m).min().unwrap();
        let chosen = cands
            .iter()
            .find(|&&(k, _)| k == out.report.shards.len())
            .map(|&(_, m)| m);
        // The executed shard count may be below the chosen k only if the
        // partitioner degraded (narrow data) — not on uniform 2-D data.
        assert_eq!(chosen, Some(best), "did not execute the argmin: {cands:?}");
    }

    #[test]
    fn single_device_choice_beats_or_matches_no_sharding() {
        // On one device extra shards buy no device parallelism — only
        // grid-build/device overlap can justify them. Whatever the
        // chooser picks, its modeled makespan must not exceed the k = 1
        // candidate's (the degenerate "don't shard" option is always on
        // the table).
        let data = uniform(2, 3000, 42);
        let out = ShardedSelfJoin::titan_x(1).run(&data, 2.0).unwrap();
        let cands = &out.report.candidate_makespans;
        let k1 = cands.iter().find(|&&(k, _)| k == 1).map(|&(_, m)| m);
        let best = cands.iter().map(|&(_, m)| m).min();
        assert!(best <= k1, "chooser worse than not sharding: {cands:?}");
        let single = GpuSelfJoin::default_device().run(&data, 2.0).unwrap();
        assert_eq!(out.table, single.table);
    }

    #[test]
    fn explicit_shard_count_is_honored() {
        let data = uniform(2, 2000, 35);
        let out = ShardedSelfJoin::titan_x(2)
            .with_shards(3)
            .run(&data, 2.0)
            .unwrap();
        assert!(out.report.shards.len() <= 3);
        assert!(out.report.candidate_makespans.is_empty());
        let single = GpuSelfJoin::default_device().run(&data, 2.0).unwrap();
        assert_eq!(out.table, single.table);
    }

    #[test]
    fn one_device_one_shard_degenerates_to_plain_join() {
        let data = uniform(3, 1000, 36);
        let out = ShardedSelfJoin::titan_x(1)
            .with_shards(1)
            .run(&data, 7.0)
            .unwrap();
        let single = GpuSelfJoin::default_device().run(&data, 7.0).unwrap();
        assert_eq!(out.table, single.table);
        assert_eq!(out.report.ghost_points, 0);
        assert_eq!(out.report.shards.len(), 1);
        assert_eq!(out.report.shards[0].dropped_ghost_pairs, 0);
        assert_eq!(out.report.ghost_h2d_bytes(), 0);
    }

    #[test]
    fn empty_dataset_runs() {
        let out = ShardedSelfJoin::titan_x(2)
            .run(&Dataset::new(2), 1.0)
            .unwrap();
        assert_eq!(out.table.num_points(), 0);
        assert_eq!(out.report.duplicates_merged, 0);
    }

    #[test]
    fn invalid_epsilon_surfaces_error() {
        let data = uniform(2, 100, 37);
        let err = ShardedSelfJoin::titan_x(2).run(&data, -2.0).unwrap_err();
        assert!(matches!(err, SelfJoinError::Grid(_)));
    }

    #[test]
    fn device_memory_released_after_run() {
        let data = uniform(2, 1500, 38);
        let engine = ShardedSelfJoin::titan_x(3);
        let _ = engine.run(&data, 2.0).unwrap();
        assert_eq!(engine.pool().total_used_bytes(), 0);
    }

    #[test]
    fn plan_exposes_partition() {
        let data = uniform(2, 2000, 39);
        let plan = ShardedSelfJoin::titan_x(2).plan(&data, 2.0).unwrap();
        assert!(plan.shards.len() >= 2);
        assert_eq!(plan.owned_points(), 2000);
    }

    #[test]
    fn chooser_projection_converges_within_band() {
        // The audit-recalibration acceptance bar: with the re-pinned
        // TRACED_EVAL_OVERHEAD and the closed-loop correction fed by
        // each run, the projected stream makespan must settle within
        // ±50% of the measured one (the audit's histogram used to sit
        // at its +800% clamp). The correction is process-global and
        // other tests observe into it concurrently, so assert on the
        // median of the last few runs rather than a single sample.
        let data = uniform(2, 6000, 45);
        let eps = 2.0;
        let engine = ShardedSelfJoin::titan_x(4);
        let mut errs = Vec::new();
        for _ in 0..8 {
            let out = engine.run(&data, eps).unwrap();
            let p = out.report.projected_stream.as_secs_f64();
            let m = out.report.measured_stream.as_secs_f64();
            assert!(m > 0.0 && p > 0.0);
            errs.push((p - m) / m);
        }
        let mut tail: Vec<f64> = errs[errs.len() - 4..].to_vec();
        tail.sort_by(f64::total_cmp);
        let median = (tail[1] + tail[2]) / 2.0;
        assert!(
            median.abs() <= 0.5,
            "post-recalibration relative error {median:+.2} outside ±50% (runs: {errs:?})"
        );
    }

    #[test]
    fn report_prelude_accounting_is_consistent() {
        let data = uniform(2, 4000, 46);
        let out = ShardedSelfJoin::titan_x(4).run(&data, 2.0).unwrap();
        let r = &out.report;
        // The prelude charges the shared sample pass once and overlaps
        // calibration with the speculative cut builds; it can never
        // exceed the fully serial sum of its parts.
        assert!(r.prelude_time >= r.sample_time);
        let serial_sum =
            r.sample_time + r.calibrate_time + r.cut_time + r.choose_time + r.partition_time;
        assert!(
            r.prelude_time <= serial_sum,
            "prelude {:?} exceeds serial sum {:?}",
            r.prelude_time,
            serial_sum
        );
        assert_eq!(r.modeled_total, r.prelude_time + r.measured_stream);
        // The partition's own build (sample + chosen cuts + materialize)
        // includes the sample pass.
        assert!(r.partition_time >= r.sample_time);
        // Per-shard phase breakdown is populated on real shards.
        for s in &r.shards {
            assert!(s.modeled_upload > Duration::ZERO, "shard {}", s.shard);
            assert!(s.modeled_kernel > Duration::ZERO, "shard {}", s.shard);
        }
    }

    #[test]
    fn transient_fault_reexecutes_shard_exactly() {
        use sim_gpu::{FaultEvent, FaultKind, FaultPlan};
        let data = uniform(2, 2500, 41);
        let eps = 2.2;
        let engine = ShardedSelfJoin::titan_x(2).with_shards(6);
        // One transient early on each device: both streams lose a shard
        // attempt, both shards re-run and the union is unchanged.
        engine.pool().inject_faults(&FaultPlan::new(vec![
            FaultEvent {
                device: 0,
                after_ops: 2,
                kind: FaultKind::Transient,
            },
            FaultEvent {
                device: 1,
                after_ops: 2,
                kind: FaultKind::Transient,
            },
        ]));
        let out = engine.run(&data, eps).unwrap();
        let single = GpuSelfJoin::default_device().run(&data, eps).unwrap();
        assert_eq!(out.table, single.table);
        assert_eq!(out.report.duplicates_merged, 0);
        assert!(out.report.device_faults >= 1);
        assert!(out.report.reexecuted_shards >= 1);
    }

    #[test]
    fn device_crash_fails_over_to_survivors() {
        use sim_gpu::{FaultEvent, FaultKind, FaultPlan};
        let data = clustered(2, 2200, 3, 1.0, 0.1, 42);
        let eps = 0.9;
        let engine = ShardedSelfJoin::titan_x(4).with_shards(8);
        // Device 2 dies almost immediately and never heals: its whole
        // queue must drain onto the three survivors.
        engine
            .pool()
            .inject_faults(&FaultPlan::new(vec![FaultEvent {
                device: 2,
                after_ops: 1,
                kind: FaultKind::Crash {
                    heal_after_probes: u32::MAX,
                },
            }]));
        let out = engine.run(&data, eps).unwrap();
        let single = GpuSelfJoin::default_device().run(&data, eps).unwrap();
        assert_eq!(out.table, single.table);
        assert_eq!(out.report.duplicates_merged, 0);
        assert!(out.report.device_faults >= 1);
        assert!(out.report.reexecuted_shards >= 1);
        assert!(!engine.pool().is_healthy(2));
        // No re-executed shard landed back on the dead device.
        for s in &out.report.shards {
            assert_ne!(
                s.device, 2,
                "shard {} reported on the crashed device",
                s.shard
            );
        }
    }

    #[test]
    fn pool_wide_crash_surfaces_fault_error() {
        use sim_gpu::{FaultEvent, FaultKind, FaultPlan};
        let data = uniform(2, 1200, 43);
        let engine = ShardedSelfJoin::titan_x(1).with_shards(4);
        engine
            .pool()
            .inject_faults(&FaultPlan::new(vec![FaultEvent {
                device: 0,
                after_ops: 1,
                kind: FaultKind::Crash {
                    heal_after_probes: u32::MAX,
                },
            }]));
        let err = engine.run(&data, 2.0).unwrap_err();
        assert!(err.is_fault(), "expected a fault error, got {err}");
    }

    #[test]
    fn straggler_slows_stream_without_changing_pairs() {
        use sim_gpu::{FaultEvent, FaultKind, FaultPlan};
        let data = uniform(2, 2000, 44);
        let eps = 2.0;
        let baseline = ShardedSelfJoin::titan_x(2)
            .with_shards(4)
            .run(&data, eps)
            .unwrap();
        let engine = ShardedSelfJoin::titan_x(2).with_shards(4);
        engine
            .pool()
            .inject_faults(&FaultPlan::new(vec![FaultEvent {
                device: 1,
                after_ops: 1,
                kind: FaultKind::Straggler {
                    factor: 50.0,
                    ops: 1000,
                },
            }]));
        let out = engine.run(&data, eps).unwrap();
        assert_eq!(out.table, baseline.table);
        assert_eq!(out.report.device_faults, 0);
        assert_eq!(out.report.reexecuted_shards, 0);
        assert!(
            out.report.modeled_total > baseline.report.modeled_total,
            "straggler should inflate the modeled makespan ({:?} vs {:?})",
            out.report.modeled_total,
            baseline.report.modeled_total
        );
    }
}
