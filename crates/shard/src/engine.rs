//! The sharded multi-device self-join engine.
//!
//! The engine is a **plan rewrite** over the shared join-plan IR
//! ([`grid_join::JoinPlan`]): the partition pass turns one logical join
//! into per-shard *subplans* — prebuilt shard index, precomputed cost
//! estimate, scoped + remapped post stage — and the rest of the pipeline
//! is scheduling and merging:
//!
//! partition → per-shard index build → on-device cost estimation → LPT
//! scheduling → one executor task per device (rayon) running its queue of
//! subplans through [`grid_join::plan::execute`] → streaming,
//! deduplicating merge into the global [`NeighborTable`].
//!
//! ## Timing model
//!
//! Every simulated device executes its kernels on the *host's* cores, and
//! the device time model (`DeviceSpec::throughput_vs_host_core`) converts
//! a launch's aggregate host work into modeled device time assuming the
//! launch had the full host to itself. Running two simulated devices'
//! kernels simultaneously would violate that assumption and double-count
//! host throughput, so the executor serializes *kernel execution* across
//! device tasks with a substrate lock (filtering, remapping and merging
//! still overlap). Cross-device concurrency is then modeled exactly the
//! way the batching scheme models transfer overlap: each device's modeled
//! busy time accumulates independently, and the engine's modeled response
//! time takes the **maximum** over devices — the busiest device bounds
//! completion, just as a real multi-GPU driver would observe.

use crate::cost::{estimate_shard_cost, ShardCost};
use crate::partition::{partition, Partition};
use crate::schedule::{lpt_schedule, Assignment};
use grid_join::plan::{execute, Backend, JoinPlan};
use grid_join::{GridIndex, HotPath, NeighborTable, Pair, SelfJoinConfig, SelfJoinError};
use parking_lot::Mutex;
use rayon::prelude::*;
use sim_gpu::{DevicePool, DeviceTally, PoolProfiler};
use sj_datasets::Dataset;
use std::time::{Duration, Instant};

/// Configuration of the sharded engine.
#[derive(Clone, Copy, Debug)]
pub struct ShardedConfig {
    /// Shards created per device when `num_shards` is not set. Over-
    /// decomposition (default 2) gives the cost-based scheduler freedom
    /// to balance skew at the price of more halo replication.
    pub shards_per_device: usize,
    /// Explicit total shard count (overrides `shards_per_device`).
    pub num_shards: Option<usize>,
    /// Per-shard join configuration (UNICOMP on by default, as in the
    /// paper's best configuration).
    pub join: SelfJoinConfig,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        Self {
            shards_per_device: 2,
            num_shards: None,
            join: SelfJoinConfig::default(),
        }
    }
}

/// Execution record of one shard.
#[derive(Clone, Debug)]
pub struct ShardRunReport {
    /// Shard index within the partition.
    pub shard: usize,
    /// Device that executed it.
    pub device: usize,
    /// Owned points.
    pub owned: usize,
    /// Halo ghost points.
    pub ghosts: usize,
    /// Scheduler's predicted cost (points + predicted pairs).
    pub predicted_cost: u64,
    /// Directed pairs this shard contributed after ownership filtering.
    pub actual_pairs: u64,
    /// Ghost-keyed pairs dropped by the ownership filter.
    pub dropped_ghost_pairs: u64,
    /// Result batches the shard's join executed.
    pub batches: usize,
    /// Modeled device time of the shard's pipeline (upload + kernels +
    /// drains, pipelined).
    pub modeled: Duration,
    /// Host wall time of the shard's pipeline.
    pub wall: Duration,
}

/// Execution report of a sharded join.
#[derive(Clone, Debug)]
pub struct ShardedReport {
    /// Dimension the partitioner cut across.
    pub split_dim: usize,
    /// Per-shard execution records, in shard order.
    pub shards: Vec<ShardRunReport>,
    /// Per-device aggregated usage (kernel launches, modeled busy time,
    /// transfer bytes), in device order.
    pub devices: Vec<DeviceTally>,
    /// Predicted per-device load the scheduler balanced.
    pub predicted_load: Vec<u64>,
    /// Total halo ghost points (replication overhead).
    pub ghost_points: usize,
    /// Wall time of the partitioning pass.
    pub partition_time: Duration,
    /// Wall time of the per-shard host index builds.
    pub index_build_time: Duration,
    /// Wall time of the cost-estimation pass.
    pub estimate_time: Duration,
    /// Wall time of the parallel execution phase.
    pub execute_time: Duration,
    /// Wall time of the sort + dedup + table-build merge.
    pub merge_time: Duration,
    /// End-to-end host wall time.
    pub total: Duration,
    /// Modeled multi-device response time: the partition pass plus the
    /// busiest device stream (per-shard index build + estimation kernel +
    /// pipelined join timeline; devices run concurrently so the maximum
    /// bounds completion). Matches the single-device
    /// `JoinReport::modeled_total` convention, which likewise excludes
    /// host-side table/merge construction.
    pub modeled_total: Duration,
    /// Duplicate pairs removed by the merge. Exclusive pair ownership
    /// makes this 0; a non-zero value signals a halo/ownership bug.
    pub duplicates_merged: u64,
}

/// Output of a sharded self-join.
#[derive(Clone, Debug)]
pub struct ShardedOutput {
    /// Directed, self-excluded neighbour lists over the *global* point
    /// ids — pair-for-pair identical to a single-device join.
    pub table: NeighborTable,
    /// Timings, per-shard and per-device accounting.
    pub report: ShardedReport,
}

/// The sharded multi-device self-join operator.
#[derive(Clone, Debug)]
pub struct ShardedSelfJoin {
    pool: DevicePool,
    config: ShardedConfig,
}

impl ShardedSelfJoin {
    /// Creates the engine over an existing device pool.
    pub fn new(pool: DevicePool) -> Self {
        Self {
            pool,
            config: ShardedConfig::default(),
        }
    }

    /// Creates the engine over `devices` simulated TITAN X devices.
    pub fn titan_x(devices: usize) -> Self {
        Self::new(DevicePool::titan_x(devices))
    }

    /// Overrides the configuration.
    pub fn with_config(mut self, config: ShardedConfig) -> Self {
        self.config = config;
        self
    }

    /// Fixes the total shard count (otherwise `devices ×
    /// shards_per_device`).
    pub fn with_shards(mut self, num_shards: usize) -> Self {
        self.config.num_shards = Some(num_shards);
        self
    }

    /// Overrides the per-shard join configuration (hot path, UNICOMP,
    /// launch geometry, batching tunables).
    pub fn with_join_config(mut self, join: SelfJoinConfig) -> Self {
        self.config.join = join;
        self
    }

    /// Selects the join hot path every shard runs (default
    /// [`HotPath::CellMajor`]).
    pub fn with_hot_path(mut self, path: HotPath) -> Self {
        self.config.join.hot_path = path;
        self
    }

    /// The device pool.
    pub fn pool(&self) -> &DevicePool {
        &self.pool
    }

    /// The active configuration.
    pub fn config(&self) -> &ShardedConfig {
        &self.config
    }

    /// Runs the sharded self-join: all ordered pairs `(p, q)`, `p ≠ q`,
    /// with `dist(p, q) ≤ epsilon`, merged across all devices.
    pub fn run(&self, data: &Dataset, epsilon: f64) -> Result<ShardedOutput, SelfJoinError> {
        let t0 = Instant::now();
        let ndev = self.pool.len();
        let num_shards = self
            .config
            .num_shards
            .unwrap_or(ndev * self.config.shards_per_device)
            .max(1);
        let part = partition(data, epsilon, num_shards)?;

        // Host index builds + on-device cost estimation (devices round-
        // robin; the prediction is reused by the join so the estimation
        // kernel runs once per shard).
        let profiler = PoolProfiler::new(ndev);
        let t1 = Instant::now();
        let mut grids = Vec::with_capacity(part.shards.len());
        let mut index_build_time = Duration::ZERO;
        let mut costs: Vec<ShardCost> = Vec::with_capacity(part.shards.len());
        for (i, shard) in part.shards.iter().enumerate() {
            let tg = Instant::now();
            // The partition is the source of truth for the halo geometry;
            // index at its ε.
            let grid = GridIndex::build(&shard.data, part.epsilon)?;
            let grid_build = tg.elapsed();
            index_build_time += grid_build;
            let est = estimate_shard_cost(
                self.pool.device(i % ndev),
                shard,
                &grid,
                &self.config.join.batching,
            )?;
            // The shard's host index build is attributed to the device
            // stream that consumes it: builds feeding different devices
            // overlap (the host is multi-core), builds feeding the same
            // device serialize — matching how the single-device
            // `JoinReport::modeled_total` counts its own grid build.
            profiler.record(
                i % ndev,
                &DeviceTally {
                    launches: 1,
                    wall: est.estimate_wall,
                    busy: grid_build + est.estimate_modeled,
                    // The estimate uploads (and frees) the full shard
                    // grid; count that transfer like the join phase does.
                    h2d_bytes: grid.size_bytes() + shard.data.len() * shard.data.dim() * 8,
                    ..DeviceTally::default()
                },
            );
            grids.push(grid);
            costs.push(est);
        }
        let estimate_time = t1.elapsed();

        let assignment: Assignment =
            lpt_schedule(&costs.iter().map(ShardCost::cost).collect::<Vec<_>>(), ndev);

        // Parallel execution: one rayon task per device drains its queue,
        // streaming ownership-filtered, globally-remapped pairs into the
        // shared merge accumulator. The substrate lock serializes kernel
        // execution across devices (see module docs).
        let t2 = Instant::now();
        let merged: Mutex<Vec<Pair>> = Mutex::new(Vec::new());
        let shard_reports: Mutex<Vec<Option<ShardRunReport>>> =
            Mutex::new(vec![None; part.shards.len()]);
        let substrate = Mutex::new(());
        let device_runs: Vec<Result<(), SelfJoinError>> = (0..ndev)
            .into_par_iter()
            .map(|d| -> Result<(), SelfJoinError> {
                for &s in &assignment.queues[d] {
                    let shard = &part.shards[s];
                    // The shard's subplan: the rewrite of the logical join
                    // restricted to this shard. Index and estimate were
                    // produced by the partition/estimation passes; the
                    // post stage applies the halo-ownership contract and
                    // lifts local ids back to global ones.
                    let subplan = self
                        .subplan(&shard.data, &grids[s], costs[s].predicted_pairs)
                        .scoped(shard.owned)
                        .remapped(&shard.global_ids);
                    let out = {
                        let _kernels = substrate.lock();
                        execute(&subplan, Backend::Device(self.pool.device(d)))?
                    };
                    let mut pairs = out.pairs;
                    profiler.record(
                        d,
                        &DeviceTally {
                            items: 1,
                            launches: out.report.batching.batches,
                            wall: out.report.device_pipeline,
                            busy: out.report.modeled_total,
                            h2d_bytes: out.report.index_bytes
                                + shard.data.len() * shard.data.dim() * 8,
                            d2h_bytes: out.report.batching.actual_pairs as usize
                                * std::mem::size_of::<Pair>(),
                        },
                    );
                    shard_reports.lock()[s] = Some(ShardRunReport {
                        shard: s,
                        device: d,
                        owned: shard.owned,
                        ghosts: shard.ghosts(),
                        predicted_cost: costs[s].cost(),
                        actual_pairs: pairs.len() as u64,
                        dropped_ghost_pairs: out.dropped_ghost_pairs,
                        batches: out.report.batching.batches,
                        modeled: out.report.modeled_total,
                        wall: out.report.total,
                    });
                    merged.lock().append(&mut pairs);
                }
                Ok(())
            })
            .collect();
        for r in device_runs {
            r?;
        }
        let execute_time = t2.elapsed();

        // Deduplicating merge: counting sort over the dense key space
        // (O(|R|) instead of a full O(|R| log |R|) pair sort on
        // multi-million-pair results), dropping duplicates per neighbor
        // list (exclusive ownership predicts zero — the count is a cheap
        // invariant check) while building the global table.
        let t3 = Instant::now();
        let pairs = merged.into_inner();
        let (table, duplicates_merged) = NeighborTable::from_pairs_dedup(data.len(), &pairs);
        let merge_time = t3.elapsed();

        let devices = profiler.snapshot();
        // Response-time convention matches the single-device
        // `JoinReport::modeled_total` (grid build + estimate + pipelined
        // device timeline): the partition pass plus the busiest device
        // stream. Host-side table construction is excluded there and the
        // host-side merge is excluded here (reported as `merge_time`).
        let modeled_total = part.build_time + profiler.makespan();
        let shards = shard_reports.into_inner().into_iter().flatten().collect();
        Ok(ShardedOutput {
            table,
            report: ShardedReport {
                split_dim: part.split_dim,
                shards,
                devices,
                predicted_load: assignment.predicted_load,
                ghost_points: part.ghost_points(),
                partition_time: part.build_time,
                index_build_time,
                estimate_time,
                execute_time,
                merge_time,
                total: t0.elapsed(),
                modeled_total,
                duplicates_merged,
            },
        })
    }

    /// The per-shard subplan of the rewrite: the configured join over the
    /// shard's prebuilt index with its scheduler-provided result estimate.
    /// `run` further scopes it to the shard's owned prefix and remaps ids
    /// to the global space.
    fn subplan<'a>(
        &self,
        shard_data: &'a Dataset,
        grid: &'a GridIndex,
        predicted_pairs: u64,
    ) -> JoinPlan<'a> {
        JoinPlan {
            exec: self.config.join.exec_options(),
            launch: self.config.join.launch,
            batching: self.config.join.batching,
            ..JoinPlan::on_grid(shard_data, grid)
        }
        .estimated(predicted_pairs)
    }

    /// Partitions without executing — exposed for inspection and tests.
    pub fn plan(&self, data: &Dataset, epsilon: f64) -> Result<Partition, SelfJoinError> {
        let num_shards = self
            .config
            .num_shards
            .unwrap_or(self.pool.len() * self.config.shards_per_device)
            .max(1);
        Ok(partition(data, epsilon, num_shards)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grid_join::{host_self_join, GpuSelfJoin};
    use sj_datasets::synthetic::{clustered, uniform};

    #[test]
    fn matches_single_device_join_on_uniform_data() {
        let data = uniform(2, 3000, 31);
        let eps = 2.5;
        let sharded = ShardedSelfJoin::titan_x(4).run(&data, eps).unwrap();
        let single = GpuSelfJoin::default_device().run(&data, eps).unwrap();
        assert_eq!(sharded.table, single.table);
        assert_eq!(sharded.report.duplicates_merged, 0);
        assert_eq!(
            sharded.report.shards.iter().map(|s| s.owned).sum::<usize>(),
            data.len()
        );
    }

    #[test]
    fn matches_single_device_join_on_skewed_data() {
        let data = clustered(2, 2500, 4, 1.0, 0.08, 32);
        let eps = 0.9;
        let sharded = ShardedSelfJoin::titan_x(2).run(&data, eps).unwrap();
        let single = GpuSelfJoin::default_device().run(&data, eps).unwrap();
        assert_eq!(sharded.table, single.table);
        assert_eq!(sharded.report.duplicates_merged, 0);
    }

    #[test]
    fn matches_host_reference_in_higher_dimensions() {
        let data = uniform(4, 1500, 33);
        let eps = 16.0;
        let sharded = ShardedSelfJoin::titan_x(3).run(&data, eps).unwrap();
        let grid = GridIndex::build(&data, eps).unwrap();
        assert_eq!(sharded.table, host_self_join(&data, &grid));
    }

    #[test]
    fn work_spreads_across_devices() {
        let data = uniform(2, 4000, 34);
        let out = ShardedSelfJoin::titan_x(4).run(&data, 2.0).unwrap();
        let busy_devices = out.report.devices.iter().filter(|t| t.items > 0).count();
        assert!(busy_devices >= 2, "only {busy_devices} devices used");
        // With work spread over ≥2 devices, the busiest device's modeled
        // time is strictly below the serial sum.
        let total: Duration = out.report.devices.iter().map(|t| t.busy).sum();
        let makespan = out.report.devices.iter().map(|t| t.busy).max().unwrap();
        assert!(makespan < total);
        assert_eq!(
            out.report.shards.len(),
            out.report.devices.iter().map(|t| t.items).sum::<usize>()
        );
    }

    #[test]
    fn hot_paths_agree_through_sharding() {
        let data = clustered(2, 2200, 3, 1.0, 0.1, 40);
        let eps = 1.1;
        let cm = ShardedSelfJoin::titan_x(3)
            .with_hot_path(HotPath::CellMajor)
            .run(&data, eps)
            .unwrap();
        let pt = ShardedSelfJoin::titan_x(3)
            .with_hot_path(HotPath::PerThread)
            .run(&data, eps)
            .unwrap();
        assert_eq!(cm.table, pt.table);
        assert_eq!(cm.report.duplicates_merged, 0);
        assert_eq!(pt.report.duplicates_merged, 0);
    }

    #[test]
    fn explicit_shard_count_is_honored() {
        let data = uniform(2, 2000, 35);
        let out = ShardedSelfJoin::titan_x(2)
            .with_shards(3)
            .run(&data, 2.0)
            .unwrap();
        assert!(out.report.shards.len() <= 3);
        let single = GpuSelfJoin::default_device().run(&data, 2.0).unwrap();
        assert_eq!(out.table, single.table);
    }

    #[test]
    fn one_device_one_shard_degenerates_to_plain_join() {
        let data = uniform(3, 1000, 36);
        let out = ShardedSelfJoin::titan_x(1)
            .with_shards(1)
            .run(&data, 7.0)
            .unwrap();
        let single = GpuSelfJoin::default_device().run(&data, 7.0).unwrap();
        assert_eq!(out.table, single.table);
        assert_eq!(out.report.ghost_points, 0);
        assert_eq!(out.report.shards.len(), 1);
        assert_eq!(out.report.shards[0].dropped_ghost_pairs, 0);
    }

    #[test]
    fn empty_dataset_runs() {
        let out = ShardedSelfJoin::titan_x(2)
            .run(&Dataset::new(2), 1.0)
            .unwrap();
        assert_eq!(out.table.num_points(), 0);
        assert_eq!(out.report.duplicates_merged, 0);
    }

    #[test]
    fn invalid_epsilon_surfaces_error() {
        let data = uniform(2, 100, 37);
        let err = ShardedSelfJoin::titan_x(2).run(&data, -2.0).unwrap_err();
        assert!(matches!(err, SelfJoinError::Grid(_)));
    }

    #[test]
    fn device_memory_released_after_run() {
        let data = uniform(2, 1500, 38);
        let engine = ShardedSelfJoin::titan_x(3);
        let _ = engine.run(&data, 2.0).unwrap();
        assert_eq!(engine.pool().total_used_bytes(), 0);
    }

    #[test]
    fn plan_exposes_partition() {
        let data = uniform(2, 2000, 39);
        let plan = ShardedSelfJoin::titan_x(2).plan(&data, 2.0).unwrap();
        assert!(plan.shards.len() >= 2);
        assert_eq!(plan.owned_points(), 2000);
    }
}
