//! Chaos property test: random seeded fault storms against the sharded
//! engine must never change the answer.
//!
//! For every generated `(devices, shards, storm seed)` the engine runs
//! under an IPPP fault storm (crashes, transients, stragglers) and the
//! result must be pair-for-pair identical to the fault-free single-device
//! join — crashes fail shards over to survivors, transients re-execute,
//! stragglers only stretch the modeled clock. A run may instead surface a
//! clean `SelfJoinError::Fault` (e.g. the storm exhausts the bounded
//! retry budget on a single-device pool), but it must never return a
//! wrong, partial, or duplicated table.

use grid_join::GpuSelfJoin;
use proptest::prelude::*;
use sim_gpu::{FaultPlan, StormConfig};
use sj_datasets::synthetic::uniform;
use sj_shard::ShardedSelfJoin;

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    #[test]
    fn prop_storms_never_change_the_answer(
        ndev in 1usize..=4,
        shards in 1usize..=16,
        storm_seed in 0u64..10_000,
    ) {
        let data = uniform(2, 600, 7 + storm_seed % 5);
        let eps = 4.0;
        let reference = GpuSelfJoin::default_device().run(&data, eps).unwrap();

        let plan = FaultPlan::storm(&StormConfig {
            seed: storm_seed,
            devices: ndev,
            horizon_ops: 48,
            // Dense enough that most cases actually inject something.
            peak_rate: 0.25,
            max_crash_devices: ndev.saturating_sub(1),
            ..StormConfig::default()
        });
        let engine = ShardedSelfJoin::titan_x(ndev).with_shards(shards);
        engine.pool().inject_faults(&plan);
        match engine.run(&data, eps) {
            Ok(out) => {
                prop_assert_eq!(&out.table, &reference.table);
                prop_assert_eq!(out.report.duplicates_merged, 0);
                prop_assert_eq!(
                    out.report.shards.iter().map(|s| s.owned).sum::<usize>(),
                    data.len()
                );
            }
            // Acceptable degraded outcome: a clean fault error once the
            // bounded retry budget is spent — never a wrong table.
            Err(e) => prop_assert!(e.is_fault(), "non-fault error under storm: {}", e),
        }
    }
}
