//! EGO-sort and the recursive, multi-threaded EGO-join.

use crate::normalize::normalize_uniform;
use crate::reorder::{permute_dims, pruning_power_order};
use grid_join::{NeighborTable, Pair};
use sj_datasets::Dataset;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Maximum dimensionality (mirrors the rest of the workspace).
const MAX_DIM: usize = 8;

/// The Super-EGO join operator.
#[derive(Clone, Copy, Debug)]
pub struct SuperEgo {
    /// Sequences at or below this length are joined with the simple
    /// (nested-loop, early-exit) join instead of recursing.
    pub simple_join_threshold: usize,
    /// Run the recursion on the rayon pool (the paper uses 32 threads).
    pub parallel: bool,
    /// Apply the dimension-reordering heuristic.
    pub reorder: bool,
}

impl Default for SuperEgo {
    fn default() -> Self {
        Self {
            simple_join_threshold: 32,
            parallel: true,
            reorder: true,
        }
    }
}

/// Execution report.
#[derive(Clone, Debug)]
pub struct SuperEgoReport {
    /// Dimension permutation applied (identity when reordering is off).
    pub order: Vec<usize>,
    /// Normalization + reorder + EGO-sort time (the paper's "ego-sort").
    pub sort_time: Duration,
    /// Recursive join time.
    pub join_time: Duration,
    /// Number of simple-join leaf invocations.
    pub simple_joins: u64,
    /// Number of sequence pairs pruned by the separation test.
    pub pruned: u64,
    /// Directed result pairs.
    pub results: u64,
}

#[derive(Clone, Copy)]
struct BBox {
    lo: [f64; MAX_DIM],
    hi: [f64; MAX_DIM],
}

impl BBox {
    fn of(coords: &[f64], dim: usize, range: std::ops::Range<usize>) -> Self {
        let mut lo = [f64::INFINITY; MAX_DIM];
        let mut hi = [f64::NEG_INFINITY; MAX_DIM];
        for i in range {
            let p = &coords[i * dim..(i + 1) * dim];
            for j in 0..dim {
                lo[j] = lo[j].min(p[j]);
                hi[j] = hi[j].max(p[j]);
            }
        }
        Self { lo, hi }
    }

    /// Whether the boxes are separated by more than ε in some dimension —
    /// the EGO pruning condition (no point pair can be within ε).
    fn separated(&self, other: &BBox, dim: usize, eps: f64) -> bool {
        for j in 0..dim {
            if self.lo[j] - other.hi[j] > eps || other.lo[j] - self.hi[j] > eps {
                return true;
            }
        }
        false
    }
}

struct JoinCtx<'a> {
    coords: &'a [f64],
    ids: &'a [u32],
    dim: usize,
    eps: f64,
    eps_sq: f64,
    threshold: usize,
    parallel: bool,
    simple_joins: AtomicU64,
    pruned: AtomicU64,
}

impl SuperEgo {
    /// Runs the self-join: directed pairs, self excluded — identical
    /// semantics to GPU-SJ and CPU-RTREE.
    pub fn self_join(&self, data: &Dataset, epsilon: f64) -> (NeighborTable, SuperEgoReport) {
        assert!(epsilon > 0.0 && epsilon.is_finite(), "bad epsilon");
        let n = data.len();
        let dim = data.dim();
        if n == 0 {
            return (
                NeighborTable::from_pairs(0, &[]),
                SuperEgoReport {
                    order: (0..dim).collect(),
                    sort_time: Duration::ZERO,
                    join_time: Duration::ZERO,
                    simple_joins: 0,
                    pruned: 0,
                    results: 0,
                },
            );
        }

        // --- EGO-sort phase (normalize, reorder, sort) ---
        let t0 = Instant::now();
        let norm = normalize_uniform(data, epsilon);
        let (order, pdata) = if self.reorder {
            let order = pruning_power_order(&norm.data, norm.epsilon);
            let pdata = permute_dims(&norm.data, &order);
            (order, pdata)
        } else {
            ((0..dim).collect(), norm.data)
        };
        let eps = norm.epsilon;

        // Sort point ids in epsilon-grid order (lexicographic cell coords
        // in the permuted dimension order).
        let cell = |i: usize, j: usize| (pdata.point(i)[j] / eps).floor() as i64;
        let mut ids: Vec<u32> = (0..n as u32).collect();
        ids.sort_by(|&a, &b| {
            for j in 0..dim {
                match cell(a as usize, j).cmp(&cell(b as usize, j)) {
                    std::cmp::Ordering::Equal => continue,
                    o => return o,
                }
            }
            std::cmp::Ordering::Equal
        });
        // Gather coordinates into EGO order for locality.
        let mut coords = Vec::with_capacity(n * dim);
        for &id in &ids {
            coords.extend_from_slice(pdata.point(id as usize));
        }
        let sort_time = t0.elapsed();

        // --- EGO-join phase ---
        let t1 = Instant::now();
        let ctx = JoinCtx {
            coords: &coords,
            ids: &ids,
            dim,
            eps,
            eps_sq: eps * eps,
            threshold: self.simple_join_threshold.max(1),
            parallel: self.parallel,
            simple_joins: AtomicU64::new(0),
            pruned: AtomicU64::new(0),
        };
        let pairs = ego_self(&ctx, 0, n);
        let join_time = t1.elapsed();

        let table = NeighborTable::from_pairs(n, &pairs);
        let report = SuperEgoReport {
            order,
            sort_time,
            join_time,
            simple_joins: ctx.simple_joins.load(Ordering::Relaxed),
            pruned: ctx.pruned.load(Ordering::Relaxed),
            results: pairs.len() as u64,
        };
        (table, report)
    }
}

/// Early-terminating distance predicate: accumulates squared differences
/// in the (reordered) dimension order and bails as soon as ε² is exceeded
/// — Super-EGO's fail-fast refinement.
#[inline]
fn within_eps(a: &[f64], b: &[f64], eps_sq: f64) -> bool {
    let mut acc = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        let d = x - y;
        acc += d * d;
        if acc > eps_sq {
            return false;
        }
    }
    true
}

fn point<'a>(ctx: &JoinCtx<'a>, i: usize) -> &'a [f64] {
    &ctx.coords[i * ctx.dim..(i + 1) * ctx.dim]
}

fn simple_self(ctx: &JoinCtx<'_>, lo: usize, hi: usize, out: &mut Vec<Pair>) {
    ctx.simple_joins.fetch_add(1, Ordering::Relaxed);
    for i in lo..hi {
        let pi = point(ctx, i);
        for j in (i + 1)..hi {
            if within_eps(pi, point(ctx, j), ctx.eps_sq) {
                let a = ctx.ids[i];
                let b = ctx.ids[j];
                out.push(Pair::new(a, b));
                out.push(Pair::new(b, a));
            }
        }
    }
}

fn simple_cross(
    ctx: &JoinCtx<'_>,
    a_lo: usize,
    a_hi: usize,
    b_lo: usize,
    b_hi: usize,
    out: &mut Vec<Pair>,
) {
    ctx.simple_joins.fetch_add(1, Ordering::Relaxed);
    for i in a_lo..a_hi {
        let pi = point(ctx, i);
        for j in b_lo..b_hi {
            if within_eps(pi, point(ctx, j), ctx.eps_sq) {
                let a = ctx.ids[i];
                let b = ctx.ids[j];
                out.push(Pair::new(a, b));
                out.push(Pair::new(b, a));
            }
        }
    }
}

fn ego_self(ctx: &JoinCtx<'_>, lo: usize, hi: usize) -> Vec<Pair> {
    let len = hi - lo;
    if len <= ctx.threshold {
        let mut out = Vec::new();
        simple_self(ctx, lo, hi, &mut out);
        return out;
    }
    let mid = lo + len / 2;
    let box1 = BBox::of(ctx.coords, ctx.dim, lo..mid);
    let box2 = BBox::of(ctx.coords, ctx.dim, mid..hi);
    let run = |f: &mut dyn FnMut() -> (Vec<Pair>, Vec<Pair>, Vec<Pair>)| f();
    let _ = run;
    let cross = |out: &mut Vec<Pair>| {
        if box1.separated(&box2, ctx.dim, ctx.eps) {
            ctx.pruned.fetch_add(1, Ordering::Relaxed);
        } else {
            let mut c = ego_cross(ctx, lo, mid, mid, hi, box1, box2);
            out.append(&mut c);
        }
    };
    if ctx.parallel && len > 4096 {
        let (mut left, (mut right, mut between)) = rayon::join(
            || ego_self(ctx, lo, mid),
            || {
                rayon::join(
                    || ego_self(ctx, mid, hi),
                    || {
                        let mut out = Vec::new();
                        cross(&mut out);
                        out
                    },
                )
            },
        );
        left.append(&mut right);
        left.append(&mut between);
        left
    } else {
        let mut out = ego_self(ctx, lo, mid);
        let mut right = ego_self(ctx, mid, hi);
        out.append(&mut right);
        cross(&mut out);
        out
    }
}

#[allow(clippy::too_many_arguments)]
fn ego_cross(
    ctx: &JoinCtx<'_>,
    a_lo: usize,
    a_hi: usize,
    b_lo: usize,
    b_hi: usize,
    a_box: BBox,
    b_box: BBox,
) -> Vec<Pair> {
    debug_assert!(!a_box.separated(&b_box, ctx.dim, ctx.eps));
    let a_len = a_hi - a_lo;
    let b_len = b_hi - b_lo;
    if a_len <= ctx.threshold && b_len <= ctx.threshold {
        let mut out = Vec::new();
        simple_cross(ctx, a_lo, a_hi, b_lo, b_hi, &mut out);
        return out;
    }
    // Split the longer sequence and recurse on the surviving halves.
    let (halves, fixed_box, fixed_lo, fixed_hi, split_a) = if a_len >= b_len {
        let mid = a_lo + a_len / 2;
        ([(a_lo, mid), (mid, a_hi)], b_box, b_lo, b_hi, true)
    } else {
        let mid = b_lo + b_len / 2;
        ([(b_lo, mid), (mid, b_hi)], a_box, a_lo, a_hi, false)
    };
    let mut tasks: Vec<(usize, usize, BBox)> = Vec::with_capacity(2);
    for &(h_lo, h_hi) in &halves {
        let hb = BBox::of(ctx.coords, ctx.dim, h_lo..h_hi);
        if hb.separated(&fixed_box, ctx.dim, ctx.eps) {
            ctx.pruned.fetch_add(1, Ordering::Relaxed);
        } else {
            tasks.push((h_lo, h_hi, hb));
        }
    }
    let run_task = |(h_lo, h_hi, hb): (usize, usize, BBox)| {
        if split_a {
            ego_cross(ctx, h_lo, h_hi, fixed_lo, fixed_hi, hb, fixed_box)
        } else {
            ego_cross(ctx, fixed_lo, fixed_hi, h_lo, h_hi, fixed_box, hb)
        }
    };
    match tasks.len() {
        0 => Vec::new(),
        1 => run_task(tasks[0]),
        _ => {
            if ctx.parallel && (a_len + b_len) > 4096 {
                let t1 = tasks[1];
                let t0 = tasks[0];
                let (mut x, mut y) = rayon::join(|| run_task(t0), || run_task(t1));
                x.append(&mut y);
                x
            } else {
                let mut x = run_task(tasks[0]);
                let mut y = run_task(tasks[1]);
                x.append(&mut y);
                x
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grid_join::{host_self_join, GridIndex};
    use sj_datasets::synthetic::{clustered, lattice, uniform};

    fn reference(data: &Dataset, eps: f64) -> NeighborTable {
        let grid = GridIndex::build(data, eps).unwrap();
        host_self_join(data, &grid)
    }

    #[test]
    fn matches_reference_2d() {
        let data = uniform(2, 1000, 91);
        let (table, report) = SuperEgo::default().self_join(&data, 3.0);
        assert_eq!(table, reference(&data, 3.0));
        assert!(report.simple_joins > 0);
        assert_eq!(report.results as usize, table.total_pairs());
    }

    #[test]
    fn matches_reference_5d() {
        let data = uniform(5, 500, 92);
        let (table, _) = SuperEgo::default().self_join(&data, 20.0);
        assert_eq!(table, reference(&data, 20.0));
    }

    #[test]
    fn matches_on_skewed_data() {
        let data = clustered(3, 900, 6, 1.2, 0.1, 93);
        let (table, report) = SuperEgo::default().self_join(&data, 2.0);
        assert_eq!(table, reference(&data, 2.0));
        assert!(report.pruned > 0, "skewed data must trigger pruning");
    }

    #[test]
    fn sequential_equals_parallel() {
        let data = uniform(3, 800, 94);
        let seq = SuperEgo {
            parallel: false,
            ..Default::default()
        };
        let par = SuperEgo::default();
        assert_eq!(seq.self_join(&data, 5.0).0, par.self_join(&data, 5.0).0);
    }

    #[test]
    fn reorder_off_still_correct() {
        let data = clustered(2, 600, 4, 1.0, 0.2, 95);
        let plain = SuperEgo {
            reorder: false,
            ..Default::default()
        };
        let (table, report) = plain.self_join(&data, 1.5);
        assert_eq!(table, reference(&data, 1.5));
        assert_eq!(report.order, vec![0, 1]);
    }

    #[test]
    fn lattice_counts() {
        // ε slightly above the lattice spacing: Super-EGO normalizes
        // coordinates, so pairs at distance *exactly* ε can flip either way
        // under f64 rounding (a knife-edge the paper also acknowledges when
        // validating against its 32-bit Super-EGO build). Off the boundary
        // the count is exact.
        let data = lattice(2, 6, 1.0);
        let (table, _) = SuperEgo::default().self_join(&data, 1.001);
        // 2 × (2·6·5) directed axis-adjacent pairs.
        assert_eq!(table.total_pairs(), 120);
    }

    #[test]
    fn tiny_threshold_still_correct() {
        let data = uniform(2, 400, 96);
        let se = SuperEgo {
            simple_join_threshold: 2,
            ..Default::default()
        };
        assert_eq!(se.self_join(&data, 4.0).0, reference(&data, 4.0));
    }

    #[test]
    fn empty_and_singleton() {
        let (t, _) = SuperEgo::default().self_join(&Dataset::new(3), 1.0);
        assert_eq!(t.num_points(), 0);
        let mut one = Dataset::new(2);
        one.push(&[1.0, 1.0]);
        let (t, _) = SuperEgo::default().self_join(&one, 1.0);
        assert_eq!(t.total_pairs(), 0);
    }

    #[test]
    fn duplicate_points() {
        let mut data = Dataset::new(2);
        for _ in 0..20 {
            data.push(&[3.0, 3.0]);
        }
        let (t, _) = SuperEgo::default().self_join(&data, 0.1);
        assert_eq!(t.total_pairs(), 20 * 19);
        assert!(t.is_irreflexive());
    }
}
