//! Uniform-scale normalization to the unit cube.
//!
//! Super-EGO expects inputs in `[0, 1]` per dimension. Normalizing each
//! dimension *independently* would distort Euclidean balls into ellipsoids
//! and change the join result; the paper sidesteps this by modifying its
//! datasets and reporting the non-normalized ε. We instead apply one
//! **uniform** scale — translate by the per-dimension minimum, divide
//! everything (including ε) by the largest dimension span — which maps the
//! data into `[0, 1]^n` while preserving the result set exactly.

use sj_datasets::Dataset;

/// Result of uniform normalization.
#[derive(Clone, Debug)]
pub struct Normalized {
    /// The rescaled dataset (all coordinates in `[0, 1]`).
    pub data: Dataset,
    /// The rescaled search radius.
    pub epsilon: f64,
    /// The single scale factor applied (`1 / max_span`).
    pub scale: f64,
}

/// Applies the uniform normalization described in the module docs.
///
/// Degenerate datasets (empty, or all points identical) return scale 1.
pub fn normalize_uniform(data: &Dataset, epsilon: f64) -> Normalized {
    let (mins, maxs) = match (data.min_per_dim(), data.max_per_dim()) {
        (Some(a), Some(b)) => (a, b),
        _ => {
            return Normalized {
                data: data.clone(),
                epsilon,
                scale: 1.0,
            }
        }
    };
    let max_span = mins
        .iter()
        .zip(&maxs)
        .map(|(lo, hi)| hi - lo)
        .fold(0.0f64, f64::max);
    let scale = if max_span > 0.0 { 1.0 / max_span } else { 1.0 };
    let dim = data.dim();
    let coords: Vec<f64> = data
        .coords()
        .iter()
        .enumerate()
        .map(|(i, &c)| (c - mins[i % dim]) * scale)
        .collect();
    Normalized {
        data: Dataset::from_flat(dim, coords),
        epsilon: epsilon * scale,
        scale,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_datasets::euclidean;
    use sj_datasets::synthetic::uniform;

    #[test]
    fn output_in_unit_cube() {
        let d = uniform(3, 2000, 71);
        let n = normalize_uniform(&d, 2.0);
        for p in n.data.iter() {
            for &x in p {
                assert!((0.0..=1.0).contains(&x), "{x}");
            }
        }
    }

    #[test]
    fn distances_scale_uniformly() {
        let d = uniform(2, 200, 72);
        let n = normalize_uniform(&d, 2.0);
        for (i, j) in [(0usize, 1usize), (5, 99), (100, 150)] {
            let orig = euclidean(d.point(i), d.point(j));
            let new = euclidean(n.data.point(i), n.data.point(j));
            assert!(
                (new - orig * n.scale).abs() < 1e-12,
                "distance not preserved up to scale"
            );
        }
    }

    #[test]
    fn join_predicate_preserved() {
        // dist(a,b) ≤ ε  ⇔  dist'(a,b) ≤ ε′.
        let d = uniform(2, 300, 73);
        let eps = 3.0;
        let n = normalize_uniform(&d, eps);
        for i in 0..50 {
            for j in 0..50 {
                let before = euclidean(d.point(i), d.point(j)) <= eps;
                let after = euclidean(n.data.point(i), n.data.point(j)) <= n.epsilon;
                assert_eq!(before, after, "pair ({i},{j}) predicate flipped");
            }
        }
    }

    #[test]
    fn degenerate_dataset() {
        let d = Dataset::from_flat(2, vec![3.0, 3.0, 3.0, 3.0]);
        let n = normalize_uniform(&d, 1.0);
        assert_eq!(n.scale, 1.0);
        assert_eq!(n.epsilon, 1.0);
        let e = normalize_uniform(&Dataset::new(2), 1.0);
        assert_eq!(e.scale, 1.0);
    }
}
