//! **Super-EGO** — the state-of-the-art CPU comparator (Kalashnikov 2013,
//! paper §VI-B).
//!
//! Super-EGO is an epsilon-grid-order join: points are sorted
//! lexicographically by their ε-grid cell coordinates (*EGO-sort*), then a
//! recursive divide-and-conquer join prunes pairs of point sequences whose
//! grid bounds are provably farther than ε apart (*EGO-join*), falling
//! back to a *simple join* with early-terminating distance evaluation on
//! small sequences. Its headline optimizations, all implemented here:
//!
//! * **Normalization** to `[0, 1]` (a single uniform scale so Euclidean
//!   geometry — and therefore the result set — is preserved exactly;
//!   [`normalize`]).
//! * **Dimension reordering** by estimated pruning power: dimensions where
//!   two random points are most likely to be farther than ε apart go
//!   first, so both the sort order and the early-exit distance loop fail
//!   fast ([`reorder`]).
//! * **Multi-threading**: the recursion parallelizes with work stealing
//!   (the paper runs it with 32 threads; here rayon's pool).
//!
//! One deliberate simplification, recorded in `DESIGN.md`: sequence
//! pruning uses each subsequence's exact bounding box (computed during
//! recursion) instead of Kalashnikov's cell-prefix arithmetic. Both prune
//! iff the sequences are separated by more than ε in some dimension; the
//! bounding-box form is tighter, implementation-independent, and keeps the
//! recursion identical in shape.
//!
//! Semantics match the rest of the workspace: directed pairs, self
//! excluded.

pub mod join;
pub mod normalize;
pub mod reorder;

pub use join::{SuperEgo, SuperEgoReport};
pub use normalize::normalize_uniform;
pub use reorder::pruning_power_order;
