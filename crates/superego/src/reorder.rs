//! Dimension reordering by pruning power (Super-EGO's key data-dependent
//! optimization).
//!
//! Kalashnikov observes that both the EGO-sort order and the
//! early-terminating distance loop benefit when the *most discriminating*
//! dimensions come first: if two random points are likely to differ by
//! more than ε in dimension `j`, putting `j` early makes sequence pruning
//! fire sooner and distance loops exit earlier. The reordering estimates,
//! per dimension, the probability that two random points are more than ε
//! apart, from a histogram of the (normalized) coordinates, and sorts
//! dimensions by descending probability.
//!
//! On uniformly distributed data every dimension has the same statistic,
//! so reordering cannot help — which is exactly why the paper finds
//! Super-EGO performs relatively worse on synthetic uniform data (§VI-C,
//! "it cannot benefit from dimensionality reordering on uniformly
//! distributed data").

use sj_datasets::Dataset;

/// Number of histogram buckets used by the estimator.
const BUCKETS: usize = 64;

/// Estimates, for each dimension, `P(|x_a − x_b| > ε)` for independent
/// random points `a`, `b`, from a per-dimension histogram. Input
/// coordinates must already be normalized to `[0, 1]`.
pub fn failure_probabilities(data: &Dataset, epsilon: f64) -> Vec<f64> {
    let dim = data.dim();
    let n = data.len();
    if n == 0 {
        return vec![0.0; dim];
    }
    let mut out = Vec::with_capacity(dim);
    let bucket_eps = (epsilon * BUCKETS as f64).ceil() as i64;
    for j in 0..dim {
        let mut hist = [0u64; BUCKETS];
        for p in data.iter() {
            let b = ((p[j] * BUCKETS as f64) as usize).min(BUCKETS - 1);
            hist[b] += 1;
        }
        // P(|Δ| > ε) ≈ Σ_{|b1 - b2| > ε·B} h[b1]·h[b2] / n².
        // Conservative at the bucket granularity: buckets within
        // bucket_eps of each other are counted as "close".
        let mut far = 0u128;
        for (b1, &h1) in hist.iter().enumerate() {
            if h1 == 0 {
                continue;
            }
            for (b2, &h2) in hist.iter().enumerate() {
                if (b1 as i64 - b2 as i64).abs() > bucket_eps {
                    far += h1 as u128 * h2 as u128;
                }
            }
        }
        out.push(far as f64 / (n as f64 * n as f64));
    }
    out
}

/// The dimension permutation Super-EGO uses: indices sorted by descending
/// failure probability (most discriminating dimension first). Ties keep
/// the natural order.
pub fn pruning_power_order(data: &Dataset, epsilon: f64) -> Vec<usize> {
    let probs = failure_probabilities(data, epsilon);
    let mut order: Vec<usize> = (0..data.dim()).collect();
    order.sort_by(|&a, &b| {
        probs[b]
            .partial_cmp(&probs[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    order
}

/// Applies a dimension permutation to a dataset (point `i`'s new `j`-th
/// coordinate is its old `order[j]`-th).
pub fn permute_dims(data: &Dataset, order: &[usize]) -> Dataset {
    assert_eq!(order.len(), data.dim(), "permutation arity mismatch");
    let dim = data.dim();
    let mut coords = Vec::with_capacity(data.coords().len());
    for p in data.iter() {
        for &j in order {
            coords.push(p[j]);
        }
    }
    let _ = dim;
    Dataset::from_flat(order.len(), coords)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_datasets::synthetic::uniform;

    #[test]
    fn uniform_dims_have_equal_power() {
        let d = {
            let mut d = uniform(3, 5000, 81);
            d.normalize_unit();
            d
        };
        let probs = failure_probabilities(&d, 0.1);
        for w in probs.windows(2) {
            assert!(
                (w[0] - w[1]).abs() < 0.05,
                "uniform dims should have similar power: {probs:?}"
            );
        }
    }

    #[test]
    fn spread_dimension_ranks_first() {
        // Dim 0 is squeezed into [0.45, 0.55]; dim 1 spans [0, 1].
        // Random pairs are far more likely to differ by > ε in dim 1.
        let mut coords = Vec::new();
        let d0 = uniform(2, 4000, 82);
        for p in d0.iter() {
            coords.push(0.45 + 0.10 * (p[0] / 100.0));
            coords.push(p[1] / 100.0);
        }
        let d = Dataset::from_flat(2, coords);
        let order = pruning_power_order(&d, 0.05);
        assert_eq!(order, vec![1, 0]);
    }

    #[test]
    fn big_epsilon_kills_all_power() {
        let mut d = uniform(2, 1000, 83);
        d.normalize_unit();
        let probs = failure_probabilities(&d, 1.0);
        assert!(probs.iter().all(|&p| p == 0.0), "{probs:?}");
    }

    #[test]
    fn permute_roundtrip() {
        let d = uniform(3, 100, 84);
        let order = vec![2, 0, 1];
        let p = permute_dims(&d, &order);
        for i in 0..d.len() {
            assert_eq!(p.point(i)[0], d.point(i)[2]);
            assert_eq!(p.point(i)[1], d.point(i)[0]);
            assert_eq!(p.point(i)[2], d.point(i)[1]);
        }
        // Inverse permutation restores the original.
        let inv = vec![1, 2, 0];
        assert_eq!(permute_dims(&p, &inv), d);
    }

    #[test]
    fn empty_dataset_ok() {
        let d = Dataset::new(4);
        assert_eq!(failure_probabilities(&d, 0.1), vec![0.0; 4]);
        assert_eq!(pruning_power_order(&d, 0.1).len(), 4);
    }
}
