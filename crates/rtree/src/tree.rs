//! The R-tree proper: arena-based nodes, Guttman insertion with quadratic
//! split, and window range queries.

use crate::rect::Rect;

/// Default maximum entries per node (Guttman's `M`).
pub const DEFAULT_MAX_ENTRIES: usize = 16;

#[derive(Clone, Debug)]
enum Child {
    /// Index of a child node in the arena.
    Node(usize),
    /// A data point id.
    Point(u32),
}

#[derive(Clone, Debug)]
struct Entry {
    rect: Rect,
    child: Child,
}

#[derive(Clone, Debug)]
struct Node {
    entries: Vec<Entry>,
    leaf: bool,
}

impl Node {
    fn mbr(&self) -> Rect {
        let mut it = self.entries.iter();
        let first = it.next().expect("nodes are never empty").rect;
        it.fold(first, |acc, e| acc.union(&e.rect))
    }
}

/// A dynamic n-dimensional R-tree over points.
#[derive(Clone, Debug)]
pub struct RTree {
    nodes: Vec<Node>,
    root: usize,
    dim: usize,
    max_entries: usize,
    min_entries: usize,
    len: usize,
    height: usize,
}

impl RTree {
    /// Creates an empty tree for `dim`-dimensional points with the default
    /// node capacity.
    pub fn new(dim: usize) -> Self {
        Self::with_capacity(dim, DEFAULT_MAX_ENTRIES)
    }

    /// Creates an empty tree with a custom maximum node fanout
    /// (`min = max × 40%`, Guttman's recommendation).
    ///
    /// # Panics
    ///
    /// Panics if `max_entries < 4` or `dim` is unsupported.
    pub fn with_capacity(dim: usize, max_entries: usize) -> Self {
        assert!(max_entries >= 4, "fanout too small");
        assert!(
            (1..=crate::rect::MAX_DIM).contains(&dim),
            "bad dimensionality"
        );
        Self {
            nodes: vec![Node {
                entries: Vec::new(),
                leaf: true,
            }],
            root: 0,
            dim,
            max_entries,
            min_entries: (max_entries * 2) / 5,
            len: 0,
            height: 1,
        }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Tree height (1 = a single leaf).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Inserts a point with the given id.
    ///
    /// # Panics
    ///
    /// Panics on dimensionality mismatch.
    pub fn insert(&mut self, p: &[f64], id: u32) {
        assert_eq!(p.len(), self.dim, "point dimensionality mismatch");
        let rect = Rect::point(p);
        if let Some((r1, n1, r2, n2)) = self.insert_rec(self.root, rect, id) {
            // Root split: grow the tree.
            let new_root = self.nodes.len();
            self.nodes.push(Node {
                entries: vec![
                    Entry {
                        rect: r1,
                        child: Child::Node(n1),
                    },
                    Entry {
                        rect: r2,
                        child: Child::Node(n2),
                    },
                ],
                leaf: false,
            });
            self.root = new_root;
            self.height += 1;
        }
        self.len += 1;
    }

    /// Recursive insert. Returns `Some((rect_a, node_a, rect_b, node_b))`
    /// when `node` split into two.
    fn insert_rec(
        &mut self,
        node: usize,
        rect: Rect,
        id: u32,
    ) -> Option<(Rect, usize, Rect, usize)> {
        if self.nodes[node].leaf {
            self.nodes[node].entries.push(Entry {
                rect,
                child: Child::Point(id),
            });
            if self.nodes[node].entries.len() > self.max_entries {
                return Some(self.split(node));
            }
            return None;
        }
        // ChooseSubtree: least enlargement, ties by smallest area.
        let mut best = 0usize;
        let mut best_enl = f64::INFINITY;
        let mut best_area = f64::INFINITY;
        for (i, e) in self.nodes[node].entries.iter().enumerate() {
            let enl = e.rect.enlargement(&rect);
            let area = e.rect.area();
            if enl < best_enl || (enl == best_enl && area < best_area) {
                best = i;
                best_enl = enl;
                best_area = area;
            }
        }
        let child_idx = match self.nodes[node].entries[best].child {
            Child::Node(c) => c,
            Child::Point(_) => unreachable!("internal node with point child"),
        };
        let split = self.insert_rec(child_idx, rect, id);
        // AdjustTree: grow the chosen entry's MBR.
        let grown = self.nodes[node].entries[best].rect.union(&rect);
        self.nodes[node].entries[best].rect = grown;
        if let Some((r1, n1, r2, n2)) = split {
            // Replace the split child's entry and add its sibling.
            self.nodes[node].entries[best] = Entry {
                rect: r1,
                child: Child::Node(n1),
            };
            self.nodes[node].entries.push(Entry {
                rect: r2,
                child: Child::Node(n2),
            });
            if self.nodes[node].entries.len() > self.max_entries {
                return Some(self.split(node));
            }
        }
        None
    }

    /// Guttman's quadratic split of an overflowing node. The node keeps
    /// group 1; a new arena node receives group 2.
    fn split(&mut self, node: usize) -> (Rect, usize, Rect, usize) {
        let leaf = self.nodes[node].leaf;
        let entries = std::mem::take(&mut self.nodes[node].entries);
        let n = entries.len();

        // PickSeeds: the pair wasting the most area if grouped together.
        let (mut s1, mut s2, mut worst) = (0usize, 1usize, f64::NEG_INFINITY);
        for i in 0..n {
            for j in (i + 1)..n {
                let d = entries[i].rect.union(&entries[j].rect).area()
                    - entries[i].rect.area()
                    - entries[j].rect.area();
                if d > worst {
                    worst = d;
                    s1 = i;
                    s2 = j;
                }
            }
        }

        let mut g1: Vec<Entry> = Vec::with_capacity(n);
        let mut g2: Vec<Entry> = Vec::with_capacity(n);
        let mut r1 = entries[s1].rect;
        let mut r2 = entries[s2].rect;
        let mut rest: Vec<Entry> = Vec::with_capacity(n - 2);
        for (i, e) in entries.into_iter().enumerate() {
            if i == s1 {
                g1.push(e);
            } else if i == s2 {
                g2.push(e);
            } else {
                rest.push(e);
            }
        }

        // PickNext: assign the entry with the strongest preference first.
        while !rest.is_empty() {
            let remaining = rest.len();
            // Force-assign if one group must take everything left to reach
            // the minimum fill.
            if g1.len() + remaining == self.min_entries.max(1) {
                for e in rest.drain(..) {
                    r1 = r1.union(&e.rect);
                    g1.push(e);
                }
                break;
            }
            if g2.len() + remaining == self.min_entries.max(1) {
                for e in rest.drain(..) {
                    r2 = r2.union(&e.rect);
                    g2.push(e);
                }
                break;
            }
            let (mut pick, mut pref) = (0usize, f64::NEG_INFINITY);
            for (i, e) in rest.iter().enumerate() {
                let d1 = r1.enlargement(&e.rect);
                let d2 = r2.enlargement(&e.rect);
                let p = (d1 - d2).abs();
                if p > pref {
                    pref = p;
                    pick = i;
                }
            }
            let e = rest.swap_remove(pick);
            let d1 = r1.enlargement(&e.rect);
            let d2 = r2.enlargement(&e.rect);
            let to_g1 = match d1.partial_cmp(&d2).expect("finite enlargements") {
                std::cmp::Ordering::Less => true,
                std::cmp::Ordering::Greater => false,
                std::cmp::Ordering::Equal => {
                    if r1.area() != r2.area() {
                        r1.area() < r2.area()
                    } else {
                        g1.len() <= g2.len()
                    }
                }
            };
            if to_g1 {
                r1 = r1.union(&e.rect);
                g1.push(e);
            } else {
                r2 = r2.union(&e.rect);
                g2.push(e);
            }
        }

        self.nodes[node].entries = g1;
        let sibling = self.nodes.len();
        self.nodes.push(Node { entries: g2, leaf });
        (r1, node, r2, sibling)
    }

    /// Bulk-loads a packed tree with Sort-Tile-Recursive partitioning
    /// (see [`crate::bulk`]): STR leaf groups become full leaves, packed
    /// bottom-up in tiling order. Queries behave identically to an
    /// incrementally built tree; MBRs are tighter and fill is higher.
    pub fn bulk_load(data: &sj_datasets::Dataset, max_entries: usize) -> RTree {
        let mut tree = RTree::with_capacity(data.dim(), max_entries);
        if data.is_empty() {
            return tree;
        }
        tree.nodes.clear();
        let groups = crate::bulk::str_leaf_groups(data, max_entries);
        let mut level: Vec<(Rect, usize)> = groups
            .into_iter()
            .map(|g| {
                let entries: Vec<Entry> = g
                    .iter()
                    .map(|&id| Entry {
                        rect: Rect::point(data.point(id as usize)),
                        child: Child::Point(id),
                    })
                    .collect();
                let idx = tree.nodes.len();
                tree.nodes.push(Node {
                    entries,
                    leaf: true,
                });
                (tree.nodes[idx].mbr(), idx)
            })
            .collect();
        let mut height = 1;
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(max_entries));
            for chunk in level.chunks(max_entries) {
                let entries: Vec<Entry> = chunk
                    .iter()
                    .map(|&(rect, idx)| Entry {
                        rect,
                        child: Child::Node(idx),
                    })
                    .collect();
                let idx = tree.nodes.len();
                tree.nodes.push(Node {
                    entries,
                    leaf: false,
                });
                next.push((tree.nodes[idx].mbr(), idx));
            }
            level = next;
            height += 1;
        }
        tree.root = level[0].1;
        tree.len = data.len();
        tree.height = height;
        tree
    }

    /// Collects the ids of all points whose coordinates intersect `window`
    /// into `out` (cleared first). This is the index *search* of the
    /// search-and-refine strategy; the caller refines with the true
    /// distance predicate.
    pub fn window_query(&self, window: &Rect, out: &mut Vec<u32>) {
        out.clear();
        if self.len == 0 {
            return;
        }
        let mut stack = vec![self.root];
        while let Some(n) = stack.pop() {
            let node = &self.nodes[n];
            for e in &node.entries {
                if window.intersects(&e.rect) {
                    match e.child {
                        Child::Point(id) => out.push(id),
                        Child::Node(c) => stack.push(c),
                    }
                }
            }
        }
    }

    /// Checks structural invariants (tests / debugging): every node's
    /// entry MBRs are contained in the parent entry's rect, fanout bounds
    /// hold, and all leaves sit at the same depth. Returns the number of
    /// points found.
    pub fn check_invariants(&self) -> usize {
        if self.len == 0 {
            return 0;
        }
        let mut leaf_depths = Vec::new();
        let count = self.check_node(self.root, None, 0, &mut leaf_depths);
        assert!(
            leaf_depths.windows(2).all(|w| w[0] == w[1]),
            "leaves at differing depths: {leaf_depths:?}"
        );
        count
    }

    fn check_node(
        &self,
        n: usize,
        parent_rect: Option<&Rect>,
        depth: usize,
        leaf_depths: &mut Vec<usize>,
    ) -> usize {
        let node = &self.nodes[n];
        assert!(!node.entries.is_empty(), "empty node {n}");
        if n != self.root {
            assert!(
                node.entries.len() <= self.max_entries,
                "node {n} overflows fanout"
            );
        }
        let mbr = node.mbr();
        if let Some(pr) = parent_rect {
            assert!(pr.contains_rect(&mbr), "parent MBR does not cover node {n}");
        }
        if node.leaf {
            leaf_depths.push(depth);
            return node.entries.len();
        }
        node.entries
            .iter()
            .map(|e| match e.child {
                Child::Node(c) => self.check_node(c, Some(&e.rect), depth + 1, leaf_depths),
                Child::Point(_) => unreachable!("point child in internal node"),
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_points(n: usize, dim: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| (0..dim).map(|_| rng.gen_range(0.0..100.0)).collect())
            .collect()
    }

    #[test]
    fn insert_and_count() {
        let pts = random_points(1000, 2, 1);
        let mut t = RTree::new(2);
        for (i, p) in pts.iter().enumerate() {
            t.insert(p, i as u32);
        }
        assert_eq!(t.len(), 1000);
        assert_eq!(t.check_invariants(), 1000);
        assert!(t.height() > 1);
    }

    #[test]
    fn window_query_matches_scan() {
        let pts = random_points(2000, 3, 2);
        let mut t = RTree::new(3);
        for (i, p) in pts.iter().enumerate() {
            t.insert(p, i as u32);
        }
        let w = Rect::new(&[20.0, 20.0, 20.0], &[45.0, 60.0, 35.0]);
        let mut got = Vec::new();
        t.window_query(&w, &mut got);
        got.sort_unstable();
        let want: Vec<u32> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| w.contains_point(p))
            .map(|(i, _)| i as u32)
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn empty_tree_query() {
        let t = RTree::new(2);
        let mut out = vec![1, 2, 3];
        t.window_query(&Rect::new(&[0.0, 0.0], &[1.0, 1.0]), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn duplicate_points_retained() {
        let mut t = RTree::new(2);
        for i in 0..100 {
            t.insert(&[5.0, 5.0], i);
        }
        assert_eq!(t.check_invariants(), 100);
        let mut out = Vec::new();
        t.window_query(&Rect::window(&[5.0, 5.0], 0.1), &mut out);
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn six_dimensional_queries() {
        let pts = random_points(800, 6, 3);
        let mut t = RTree::new(6);
        for (i, p) in pts.iter().enumerate() {
            t.insert(p, i as u32);
        }
        t.check_invariants();
        let center = &pts[17];
        let w = Rect::window(center, 20.0);
        let mut got = Vec::new();
        t.window_query(&w, &mut got);
        got.sort_unstable();
        let want: Vec<u32> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| w.contains_point(p))
            .map(|(i, _)| i as u32)
            .collect();
        assert_eq!(got, want);
        assert!(got.contains(&17));
    }

    #[test]
    fn custom_fanout() {
        let pts = random_points(500, 2, 4);
        for fanout in [4, 8, 32] {
            let mut t = RTree::with_capacity(2, fanout);
            for (i, p) in pts.iter().enumerate() {
                t.insert(p, i as u32);
            }
            assert_eq!(t.check_invariants(), 500, "fanout {fanout}");
        }
    }

    #[test]
    fn sorted_insertion_also_valid() {
        // Degenerate insertion orders (fully sorted) stress the split
        // heuristic's balance guarantees.
        let mut t = RTree::new(1);
        for i in 0..1000 {
            t.insert(&[i as f64], i as u32);
        }
        assert_eq!(t.check_invariants(), 1000);
    }

    #[test]
    fn bulk_load_matches_incremental_queries() {
        let pts = random_points(3000, 3, 5);
        let mut flat = Vec::new();
        for p in &pts {
            flat.extend_from_slice(p);
        }
        let data = sj_datasets::Dataset::from_flat(3, flat);
        let bulk = RTree::bulk_load(&data, 16);
        assert_eq!(bulk.check_invariants(), 3000);
        let mut incr = RTree::new(3);
        for (i, p) in pts.iter().enumerate() {
            incr.insert(p, i as u32);
        }
        let w = Rect::new(&[10.0, 10.0, 10.0], &[40.0, 70.0, 30.0]);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        bulk.window_query(&w, &mut a);
        incr.window_query(&w, &mut b);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn bulk_load_is_shallower_or_equal() {
        let pts = random_points(4000, 2, 6);
        let mut flat = Vec::new();
        for p in &pts {
            flat.extend_from_slice(p);
        }
        let data = sj_datasets::Dataset::from_flat(2, flat);
        let bulk = RTree::bulk_load(&data, 16);
        let mut incr = RTree::new(2);
        for (i, p) in pts.iter().enumerate() {
            incr.insert(p, i as u32);
        }
        assert!(
            bulk.height() <= incr.height(),
            "bulk {} vs incremental {}",
            bulk.height(),
            incr.height()
        );
        assert!(bulk.height() >= 2);
    }

    #[test]
    fn bulk_load_empty_and_tiny() {
        let empty = RTree::bulk_load(&sj_datasets::Dataset::new(2), 16);
        assert!(empty.is_empty());
        let mut d = sj_datasets::Dataset::new(2);
        d.push(&[1.0, 2.0]);
        let one = RTree::bulk_load(&d, 16);
        assert_eq!(one.check_invariants(), 1);
        let mut out = Vec::new();
        one.window_query(&Rect::window(&[1.0, 2.0], 0.1), &mut out);
        assert_eq!(out, vec![0]);
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn wrong_dim_rejected() {
        let mut t = RTree::new(2);
        t.insert(&[1.0, 2.0, 3.0], 0);
    }
}
