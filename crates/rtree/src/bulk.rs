//! Sort-Tile-Recursive (STR) partitioning for bulk loading.
//!
//! The paper's reference implementation approximates packed construction
//! by bin-sorting the insertion order (citing Kamel & Faloutsos' packed
//! R-trees). This module provides the real thing: STR (Leutenegger et
//! al.) tiles the points into leaf groups of at most `leaf_capacity`
//! points with near-square extents, which [`crate::tree::RTree::bulk_load`]
//! packs bottom-up. Bulk-loaded trees answer queries identically but have
//! full leaves and tighter MBRs, making them a stronger (faster) variant
//! of the CPU-RTREE baseline — the ablation benches quantify the gap.

use sj_datasets::Dataset;

/// Partitions point ids into STR leaf groups of at most `leaf_capacity`.
///
/// # Panics
///
/// Panics if `leaf_capacity == 0`.
pub fn str_leaf_groups(data: &Dataset, leaf_capacity: usize) -> Vec<Vec<u32>> {
    assert!(leaf_capacity > 0, "leaf capacity must be positive");
    let mut ids: Vec<u32> = (0..data.len() as u32).collect();
    let mut groups = Vec::new();
    tile(data, &mut ids, 0, leaf_capacity, &mut groups);
    groups
}

fn tile(data: &Dataset, ids: &mut [u32], dim: usize, cap: usize, out: &mut Vec<Vec<u32>>) {
    if ids.is_empty() {
        return;
    }
    if ids.len() <= cap {
        out.push(ids.to_vec());
        return;
    }
    let remaining_dims = data.dim() - dim;
    if remaining_dims == 0 {
        // Ran out of dimensions: chop sequentially.
        for chunk in ids.chunks(cap) {
            out.push(chunk.to_vec());
        }
        return;
    }
    // Number of leaf pages this subtree needs, and slabs along this axis:
    // S = ceil(P^(1/remaining_dims)).
    let pages = ids.len().div_ceil(cap);
    let slabs = (pages as f64).powf(1.0 / remaining_dims as f64).ceil() as usize;
    let slab_size = ids.len().div_ceil(slabs);
    ids.sort_unstable_by(|&a, &b| {
        data.point(a as usize)[dim]
            .partial_cmp(&data.point(b as usize)[dim])
            .expect("finite coordinates")
    });
    let mut rest = ids;
    while !rest.is_empty() {
        let take = slab_size.min(rest.len());
        let (slab, tail) = rest.split_at_mut(take);
        tile(data, slab, dim + 1, cap, out);
        rest = tail;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_datasets::synthetic::uniform;

    #[test]
    fn groups_partition_all_points() {
        let data = uniform(3, 2000, 51);
        let groups = str_leaf_groups(&data, 16);
        let mut all: Vec<u32> = groups.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..2000u32).collect::<Vec<_>>());
        assert!(groups.iter().all(|g| g.len() <= 16 && !g.is_empty()));
    }

    #[test]
    fn groups_are_mostly_full() {
        let data = uniform(2, 5000, 52);
        let groups = str_leaf_groups(&data, 16);
        // STR packs: the average fill should be high.
        let avg = 5000.0 / groups.len() as f64;
        assert!(avg > 12.0, "average leaf fill {avg:.1} of 16");
    }

    #[test]
    fn groups_are_spatially_tight() {
        // STR leaves should have far smaller extents than random groups.
        let data = uniform(2, 4000, 53);
        let groups = str_leaf_groups(&data, 16);
        let group_span = |g: &[u32]| {
            let mut lo = [f64::INFINITY; 2];
            let mut hi = [f64::NEG_INFINITY; 2];
            for &id in g {
                let p = data.point(id as usize);
                for j in 0..2 {
                    lo[j] = lo[j].min(p[j]);
                    hi[j] = hi[j].max(p[j]);
                }
            }
            (hi[0] - lo[0]) * (hi[1] - lo[1])
        };
        let avg_area: f64 = groups.iter().map(|g| group_span(g)).sum::<f64>() / groups.len() as f64;
        // 4000 points in 100×100 at 16/leaf → ~250 leaves → ~40 units²
        // each if perfectly tiled; allow generous slack.
        assert!(avg_area < 400.0, "average leaf area {avg_area:.1}");
    }

    #[test]
    fn small_input_single_group() {
        let data = uniform(2, 10, 54);
        let groups = str_leaf_groups(&data, 16);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].len(), 10);
    }

    #[test]
    fn empty_input() {
        let data = Dataset::new(2);
        assert!(str_leaf_groups(&data, 16).is_empty());
    }
}
