//! Guttman R-tree — the paper's CPU search-and-refine baseline
//! (**CPU-RTREE**, §VI-B).
//!
//! A from-scratch dynamic R-tree (Guttman 1984) with quadratic split,
//! supporting n-dimensional point data. The paper's reference
//! implementation is *sequential*, inserts points in bin-sorted order
//! (points are first sorted into unit-length bins per dimension so
//! co-located data is inserted together and internal nodes do not span too
//! much empty space), and answers each self-join range query with a
//! window search followed by a Euclidean refinement.
//!
//! Modules: [`rect`] (MBR arithmetic), [`tree`] (insert / quadratic
//! split / range query), [`selfjoin`] (the CPU-RTREE baseline pipeline).

pub mod bulk;
pub mod rect;
pub mod selfjoin;
pub mod tree;

pub use bulk::str_leaf_groups;
pub use rect::Rect;
pub use selfjoin::{rtree_self_join, RTreeJoinReport};
pub use tree::RTree;
