//! The CPU-RTREE self-join baseline (paper §VI-B).
//!
//! Pipeline, exactly as the paper describes its reference implementation:
//!
//! 1. **Bin-sort** the points into unit-length bins per dimension and
//!    insert them in that order (co-located points inserted together keep
//!    internal MBRs tight; the paper cites Hilbert packing as the
//!    motivation for a locality-preserving order).
//! 2. For every point, run a **window query** of half-width ε (the index
//!    *search*, producing a candidate set).
//! 3. **Refine** candidates with the true Euclidean predicate.
//!
//! Execution is sequential (1 thread), matching the paper's baseline. The
//! paper omits R-tree construction time from its measurements, so the
//! report separates build and query phases.

use crate::rect::Rect;
use crate::tree::RTree;
use grid_join::{NeighborTable, Pair};
use sj_datasets::{euclidean_sq, Dataset};
use std::time::{Duration, Instant};

/// Timing breakdown of a CPU-RTREE self-join.
#[derive(Clone, Debug)]
pub struct RTreeJoinReport {
    /// Bin-sort + insertion time (excluded from the paper's plots).
    pub build: Duration,
    /// Search + refine time (what the paper reports).
    pub query: Duration,
    /// Candidate pairs produced by window queries before refinement.
    pub candidates: u64,
    /// Directed result pairs after refinement.
    pub results: u64,
}

/// Builds the bin-sorted R-tree for a dataset.
pub fn build_bin_sorted(data: &Dataset) -> RTree {
    let mut order: Vec<u32> = (0..data.len() as u32).collect();
    // Sort by unit-length bins per dimension, lexicographically; ties keep
    // input order (stable sort).
    order.sort_by(|&a, &b| {
        let pa = data.point(a as usize);
        let pb = data.point(b as usize);
        for j in 0..data.dim() {
            let ba = pa[j].floor() as i64;
            let bb = pb[j].floor() as i64;
            match ba.cmp(&bb) {
                std::cmp::Ordering::Equal => continue,
                o => return o,
            }
        }
        std::cmp::Ordering::Equal
    });
    let mut tree = RTree::new(data.dim());
    for &id in &order {
        tree.insert(data.point(id as usize), id);
    }
    tree
}

/// Runs the sequential search-and-refine self-join. Returns the neighbour
/// table (directed pairs, self excluded — identical semantics to GPU-SJ)
/// and the timing report.
pub fn rtree_self_join(data: &Dataset, epsilon: f64) -> (NeighborTable, RTreeJoinReport) {
    assert!(epsilon > 0.0 && epsilon.is_finite(), "bad epsilon");
    let t0 = Instant::now();
    let tree = build_bin_sorted(data);
    let build = t0.elapsed();

    let t1 = Instant::now();
    let eps_sq = epsilon * epsilon;
    let mut pairs: Vec<Pair> = Vec::new();
    let mut candidates = 0u64;
    let mut buf: Vec<u32> = Vec::new();
    for q in 0..data.len() {
        let p = data.point(q);
        tree.window_query(&Rect::window(p, epsilon), &mut buf);
        candidates += buf.len() as u64;
        for &cand in &buf {
            if cand as usize != q && euclidean_sq(p, data.point(cand as usize)) <= eps_sq {
                pairs.push(Pair::new(q as u32, cand));
            }
        }
    }
    let query = t1.elapsed();
    let results = pairs.len() as u64;
    (
        NeighborTable::from_pairs(data.len(), &pairs),
        RTreeJoinReport {
            build,
            query,
            candidates,
            results,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use grid_join::{host_self_join, GridIndex};
    use sj_datasets::synthetic::{clustered, lattice, uniform};

    #[test]
    fn matches_grid_join_2d() {
        let data = uniform(2, 800, 61);
        let (table, report) = rtree_self_join(&data, 4.0);
        let grid = GridIndex::build(&data, 4.0).unwrap();
        assert_eq!(table, host_self_join(&data, &grid));
        assert!(report.candidates >= report.results);
    }

    #[test]
    fn matches_grid_join_4d() {
        let data = uniform(4, 400, 62);
        let (table, _) = rtree_self_join(&data, 15.0);
        let grid = GridIndex::build(&data, 15.0).unwrap();
        assert_eq!(table, host_self_join(&data, &grid));
    }

    #[test]
    fn matches_on_skewed_data() {
        let data = clustered(3, 700, 5, 1.0, 0.1, 63);
        let (table, _) = rtree_self_join(&data, 2.0);
        let grid = GridIndex::build(&data, 2.0).unwrap();
        assert_eq!(table, host_self_join(&data, &grid));
    }

    #[test]
    fn lattice_counts() {
        let data = lattice(2, 5, 1.0);
        let (table, report) = rtree_self_join(&data, 1.0);
        assert_eq!(table.total_pairs(), 80);
        // Window queries see the diagonal candidates too (square vs circle).
        assert!(report.candidates as usize > table.total_pairs());
    }

    #[test]
    fn candidate_set_is_superset() {
        // The refinement must only ever discard; every true neighbour is a
        // candidate (window contains the ε-ball).
        let data = uniform(2, 500, 64);
        let (table, report) = rtree_self_join(&data, 3.0);
        assert!(report.candidates >= table.total_pairs() as u64 + data.len() as u64);
        // (+|D| because each query's own point is always a candidate.)
        assert!(table.is_symmetric());
        assert!(table.is_irreflexive());
    }
}
