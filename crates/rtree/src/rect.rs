//! Minimum bounding rectangles (MBRs) in up to 8 dimensions.

/// Maximum dimensionality (matches the join kernels' limit).
pub const MAX_DIM: usize = 8;

/// An axis-aligned minimum bounding rectangle.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Rect {
    lo: [f64; MAX_DIM],
    hi: [f64; MAX_DIM],
    dim: usize,
}

impl Rect {
    /// A degenerate rectangle at a single point.
    pub fn point(p: &[f64]) -> Self {
        assert!(!p.is_empty() && p.len() <= MAX_DIM, "bad dimensionality");
        let mut lo = [0.0; MAX_DIM];
        let mut hi = [0.0; MAX_DIM];
        lo[..p.len()].copy_from_slice(p);
        hi[..p.len()].copy_from_slice(p);
        Self {
            lo,
            hi,
            dim: p.len(),
        }
    }

    /// A rectangle from explicit bounds.
    ///
    /// # Panics
    ///
    /// Panics if dimensions mismatch or any `lo > hi`.
    pub fn new(lo: &[f64], hi: &[f64]) -> Self {
        assert_eq!(lo.len(), hi.len(), "bound dimensionality mismatch");
        assert!(!lo.is_empty() && lo.len() <= MAX_DIM, "bad dimensionality");
        assert!(
            lo.iter().zip(hi).all(|(a, b)| a <= b),
            "inverted rectangle bounds"
        );
        let mut l = [0.0; MAX_DIM];
        let mut h = [0.0; MAX_DIM];
        l[..lo.len()].copy_from_slice(lo);
        h[..hi.len()].copy_from_slice(hi);
        Self {
            lo: l,
            hi: h,
            dim: lo.len(),
        }
    }

    /// The query window `[center − r, center + r]` in every dimension.
    pub fn window(center: &[f64], r: f64) -> Self {
        assert!(r >= 0.0, "negative window radius");
        let mut lo = [0.0; MAX_DIM];
        let mut hi = [0.0; MAX_DIM];
        for (j, &c) in center.iter().enumerate() {
            lo[j] = c - r;
            hi[j] = c + r;
        }
        Self {
            lo,
            hi,
            dim: center.len(),
        }
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Lower bounds.
    pub fn lo(&self) -> &[f64] {
        &self.lo[..self.dim]
    }

    /// Upper bounds.
    pub fn hi(&self) -> &[f64] {
        &self.hi[..self.dim]
    }

    /// Hyper-volume (product of side lengths).
    pub fn area(&self) -> f64 {
        (0..self.dim).map(|j| self.hi[j] - self.lo[j]).product()
    }

    /// Smallest rectangle containing `self` and `other`.
    pub fn union(&self, other: &Rect) -> Rect {
        debug_assert_eq!(self.dim, other.dim);
        let mut out = *self;
        for j in 0..self.dim {
            out.lo[j] = out.lo[j].min(other.lo[j]);
            out.hi[j] = out.hi[j].max(other.hi[j]);
        }
        out
    }

    /// Area increase needed to absorb `other` (Guttman's enlargement
    /// criterion for subtree choice).
    pub fn enlargement(&self, other: &Rect) -> f64 {
        self.union(other).area() - self.area()
    }

    /// Whether the rectangles overlap (closed bounds).
    pub fn intersects(&self, other: &Rect) -> bool {
        debug_assert_eq!(self.dim, other.dim);
        (0..self.dim).all(|j| self.lo[j] <= other.hi[j] && self.hi[j] >= other.lo[j])
    }

    /// Whether a point lies inside (closed bounds).
    pub fn contains_point(&self, p: &[f64]) -> bool {
        debug_assert_eq!(self.dim, p.len());
        (0..self.dim).all(|j| self.lo[j] <= p[j] && p[j] <= self.hi[j])
    }

    /// Whether `other` lies entirely inside `self`.
    pub fn contains_rect(&self, other: &Rect) -> bool {
        (0..self.dim).all(|j| self.lo[j] <= other.lo[j] && other.hi[j] <= self.hi[j])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_rect_has_zero_area() {
        let r = Rect::point(&[1.0, 2.0, 3.0]);
        assert_eq!(r.area(), 0.0);
        assert!(r.contains_point(&[1.0, 2.0, 3.0]));
        assert!(!r.contains_point(&[1.0, 2.0, 3.1]));
    }

    #[test]
    fn union_and_enlargement() {
        let a = Rect::new(&[0.0, 0.0], &[2.0, 2.0]);
        let b = Rect::new(&[3.0, 1.0], &[4.0, 2.0]);
        let u = a.union(&b);
        assert_eq!(u.lo(), &[0.0, 0.0]);
        assert_eq!(u.hi(), &[4.0, 2.0]);
        assert_eq!(u.area(), 8.0);
        assert_eq!(a.enlargement(&b), 4.0);
        assert_eq!(u.enlargement(&a), 0.0);
    }

    #[test]
    fn intersection_cases() {
        let a = Rect::new(&[0.0, 0.0], &[2.0, 2.0]);
        assert!(a.intersects(&Rect::new(&[1.0, 1.0], &[3.0, 3.0])));
        assert!(a.intersects(&Rect::new(&[2.0, 2.0], &[3.0, 3.0]))); // touching
        assert!(!a.intersects(&Rect::new(&[2.1, 0.0], &[3.0, 1.0])));
        assert!(a.intersects(&a));
    }

    #[test]
    fn window_bounds() {
        let w = Rect::window(&[5.0, 5.0], 1.5);
        assert_eq!(w.lo(), &[3.5, 3.5]);
        assert_eq!(w.hi(), &[6.5, 6.5]);
        assert!(w.contains_rect(&Rect::point(&[4.0, 6.0])));
    }

    #[test]
    fn containment() {
        let big = Rect::new(&[0.0, 0.0], &[10.0, 10.0]);
        let small = Rect::new(&[1.0, 1.0], &[2.0, 2.0]);
        assert!(big.contains_rect(&small));
        assert!(!small.contains_rect(&big));
    }

    #[test]
    #[should_panic(expected = "inverted rectangle")]
    fn inverted_bounds_rejected() {
        let _ = Rect::new(&[1.0], &[0.0]);
    }
}
