//! Tests for the features this repo adds beyond the paper: kNN search
//! (the paper's stated future work), cell-ordered query scheduling, and
//! the warp-work regularity argument of §IV-A.

use gpu_self_join::gpu::append::AppendBuffer;
use gpu_self_join::gpu::{launch_profiled, launch_work_profiled, Device, DeviceSpec, LaunchConfig};
use gpu_self_join::join::kernels::SelfJoinKernel;
use gpu_self_join::join::knn::{gpu_knn, host_knn};
use gpu_self_join::join::{DeviceGrid, GridIndex, Pair, SelfJoinConfig};
use gpu_self_join::prelude::*;

#[test]
fn cell_order_does_not_change_results() {
    let data = clustered(3, 2000, 5, 1.5, 0.1, 41);
    for unicomp in [false, true] {
        // The flag only exists on the per-thread path (the cell-major
        // default is inherently cell-ordered), so pin that path.
        let mut cfg = SelfJoinConfig {
            unicomp,
            hot_path: HotPath::PerThread,
            ..SelfJoinConfig::default()
        };
        cfg.cell_order_queries = false;
        let plain = GpuSelfJoin::default_device()
            .with_config(cfg)
            .run(&data, 2.0)
            .unwrap();
        cfg.cell_order_queries = true;
        let ordered = GpuSelfJoin::default_device()
            .with_config(cfg)
            .run(&data, 2.0)
            .unwrap();
        assert_eq!(plain.table, ordered.table, "unicomp={unicomp}");
    }
}

/// On skewed data, scheduling same-cell queries onto adjacent threads
/// improves L1 hit rate (same neighbour cells re-read by consecutive
/// threads) — the locality rationale for the extension.
#[test]
fn cell_order_improves_cache_hit_rate_on_skewed_data() {
    let data = clustered(2, 4000, 6, 1.0, 0.1, 42);
    let eps = 1.5;
    let grid = GridIndex::build(&data, eps).unwrap();
    let device = Device::new(DeviceSpec::titan_x_pascal());
    let dg = DeviceGrid::upload(&device, &data, &grid).unwrap();
    let mut rates = Vec::new();
    for cell_order in [false, true] {
        let results = AppendBuffer::<Pair>::new(device.pool(), 4_000_000).unwrap();
        let kernel = SelfJoinKernel {
            grid: &dg,
            eps_sq: dg.epsilon * dg.epsilon,
            results: &results,
            query_offset: 0,
            query_count: data.len(),
            unicomp: false,
            cell_order,
            ownership: None,
        };
        let (_, cache) = launch_profiled(&device, LaunchConfig::default(), data.len(), &kernel);
        rates.push(cache.hit_rate());
    }
    assert!(
        rates[1] > rates[0],
        "cell order should raise hit rate: {:.4} -> {:.4}",
        rates[0],
        rates[1]
    );
}

/// Same-cell queries do the same amount of work, so cell ordering lowers
/// warp imbalance (the §IV-A regularity argument, quantified).
#[test]
fn cell_order_lowers_warp_imbalance_on_skewed_data() {
    let data = clustered(2, 4000, 6, 1.0, 0.15, 43);
    let eps = 1.2;
    let grid = GridIndex::build(&data, eps).unwrap();
    let device = Device::new(DeviceSpec::titan_x_pascal());
    let dg = DeviceGrid::upload(&device, &data, &grid).unwrap();
    let mut imbalance = Vec::new();
    for cell_order in [false, true] {
        let results = AppendBuffer::<Pair>::new(device.pool(), 4_000_000).unwrap();
        let kernel = SelfJoinKernel {
            grid: &dg,
            eps_sq: dg.epsilon * dg.epsilon,
            results: &results,
            query_offset: 0,
            query_count: data.len(),
            unicomp: false,
            cell_order,
            ownership: None,
        };
        let (_, profile) =
            launch_work_profiled(&device, LaunchConfig::default(), data.len(), &kernel);
        imbalance.push(profile.mean_warp_imbalance());
    }
    assert!(
        imbalance[1] < imbalance[0],
        "cell order should lower imbalance: {:.3} -> {:.3}",
        imbalance[0],
        imbalance[1]
    );
}

/// The grid kernel's bounded search is more SIMD-regular than the
/// brute-force kernel is *irregular* — i.e. the grid join keeps decent
/// efficiency even on skewed data (brute force is trivially 1.0; the
/// interesting bound is that the grid join doesn't collapse).
#[test]
fn grid_kernel_simd_efficiency_reasonable() {
    let data = uniform(2, 3000, 44);
    let grid = GridIndex::build(&data, 2.0).unwrap();
    let device = Device::new(DeviceSpec::titan_x_pascal());
    let dg = DeviceGrid::upload(&device, &data, &grid).unwrap();
    let results = AppendBuffer::<Pair>::new(device.pool(), 4_000_000).unwrap();
    let kernel = SelfJoinKernel {
        grid: &dg,
        eps_sq: dg.epsilon * dg.epsilon,
        results: &results,
        query_offset: 0,
        query_count: data.len(),
        unicomp: false,
        cell_order: false,
        ownership: None,
    };
    let (_, profile) = launch_work_profiled(&device, LaunchConfig::default(), data.len(), &kernel);
    let eff = profile.simd_efficiency();
    assert!(
        eff > 0.5,
        "uniform-data grid kernel should stay SIMD-efficient, got {eff:.3}"
    );
}

#[test]
fn knn_consistent_with_self_join() {
    // Every kNN neighbour with distance ≤ ε must appear in the ε-join
    // table, and vice versa for the k nearest.
    let data = uniform(2, 800, 45);
    let eps = 4.0;
    let k = 10;
    let device = Device::new(DeviceSpec::titan_x_pascal());
    let knn = gpu_knn(&device, &data, eps, k).unwrap();
    let join = GpuSelfJoin::default_device().run(&data, eps).unwrap();
    for (q, hits) in knn.iter().enumerate() {
        let within: Vec<u32> = hits
            .iter()
            .filter(|h| h.dist_sq <= eps * eps)
            .map(|h| h.neighbor)
            .collect();
        for n in &within {
            assert!(
                join.table.neighbors(q).binary_search(n).is_ok(),
                "kNN hit {n} of query {q} missing from join table"
            );
        }
        // If the query has fewer than k join-neighbours, kNN must have
        // found all of them within ε.
        if join.table.neighbors(q).len() < k {
            assert_eq!(within.len(), join.table.neighbors(q).len(), "query {q}");
        }
    }
}

#[test]
fn knn_host_and_gpu_agree_on_surrogates() {
    use gpu_self_join::datasets::sdss;
    let data = sdss::sdss2d(600, 46);
    let device = Device::new(DeviceSpec::titan_x_pascal());
    let grouped = gpu_knn(&device, &data, 0.5, 4).unwrap();
    let grid = GridIndex::build(&data, 0.5).unwrap();
    for q in (0..data.len()).step_by(7) {
        let host = host_knn(&data, &grid, q, 4);
        assert_eq!(grouped[q].len(), host.len());
        for (g, h) in grouped[q].iter().zip(&host) {
            assert!((g.dist_sq - h.0).abs() < 1e-12, "q={q}");
        }
    }
}

#[test]
fn dbscan_pipeline_on_all_generators() {
    use gpu_self_join::clustering::dbscan;
    use gpu_self_join::datasets::{sdss, sw};
    let join = GpuSelfJoin::default_device();
    for (name, data, eps) in [
        ("sw2d", sw::sw2d(1500, 47), 3.0),
        ("sdss", sdss::sdss2d(1500, 48), 0.8),
        ("clustered", clustered(3, 1500, 4, 1.5, 0.1, 49), 1.5),
    ] {
        let out = join.run(&data, eps).unwrap();
        let c = dbscan(&out.table, 4);
        assert!(
            c.num_clusters() > 0,
            "{name}: no clusters found (eps too small for surrogate?)"
        );
        assert!(c.noise_count() < data.len(), "{name}: everything noise");
    }
}
