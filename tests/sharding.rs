//! Property and integration tests of the sharded multi-device engine:
//! the halo-ownership invariant must make the merged result pair-for-pair
//! identical to the single-device join, for any dataset, ε, shard count
//! and pool size.

use gpu_self_join::prelude::*;
use gpu_self_join::shard::partition;
use proptest::prelude::*;

/// Random dataset: dimension 1..=4, mixed uniform/clustered, with an ε
/// spanning sparse to dense neighbourhoods.
fn workload_strategy() -> impl Strategy<Value = (Dataset, f64)> {
    (
        1usize..=4,
        30usize..250,
        1u64..10_000,
        0.02f64..0.25,
        0usize..3,
    )
        .prop_map(|(dim, n, seed, eps_frac, family)| {
            let data = match family {
                0 => uniform(dim, n, seed),
                1 => clustered(dim, n, 3, 5.0, 0.2, seed),
                _ => clustered(dim, n, 2, 1.0, 0.05, seed),
            };
            let eps = (100.0 * eps_frac).max(2.0);
            (data, eps)
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The satellite property: for random datasets, ε and shard counts
    /// 1–4, the sharded neighbour table equals the single-device table
    /// pair-for-pair (NeighborTable construction canonically sorts both
    /// sides, so equality is exact pair equality).
    #[test]
    fn sharded_equals_single_device(
        (data, eps) in workload_strategy(),
        shards in 1usize..=4,
        devices in 1usize..=3,
    ) {
        let single = GpuSelfJoin::default_device().run(&data, eps).unwrap();
        let sharded = ShardedSelfJoin::titan_x(devices)
            .with_shards(shards)
            .run(&data, eps)
            .unwrap();
        prop_assert_eq!(&sharded.table, &single.table);
        prop_assert_eq!(sharded.report.duplicates_merged, 0);
        prop_assert_eq!(
            sharded.report.shards.iter().map(|s| s.owned).sum::<usize>(),
            data.len()
        );
    }

    /// kd-partition invariants, over random dimensions 2–6 and shard
    /// counts 1–16:
    ///
    /// 1. the shard boxes tile the domain — every point is *owned* by
    ///    exactly one shard's box (pairwise-disjoint ownership regions
    ///    and exhaustive coverage in one check);
    /// 2. each shard's owned prefix is exactly the set of points its box
    ///    owns;
    /// 3. ghost bands are ε-correct — for every pair within ε, the owner
    ///    shard of each endpoint carries the other endpoint (owned or
    ///    ghost), so no cross-box neighbour is ever lost.
    #[test]
    fn kd_partition_invariants(
        dim in 2usize..=6,
        n in 20usize..120,
        seed in 1u64..10_000,
        family in 0usize..3,
        eps in 2.0f64..30.0,
        shards in 1usize..=16,
    ) {
        let data = match family {
            0 => uniform(dim, n, seed),
            1 => clustered(dim, n, 3, 5.0, 0.2, seed),
            _ => clustered(dim, n, 2, 1.0, 0.05, seed),
        };
        let part = partition::partition(&data, eps, shards).unwrap();

        // (1) Exclusive, exhaustive box ownership.
        let mut owner = vec![usize::MAX; data.len()];
        for (g, p) in data.iter().enumerate() {
            let owners: Vec<usize> = part
                .shards
                .iter()
                .enumerate()
                .filter(|(_, s)| s.owns(p))
                .map(|(i, _)| i)
                .collect();
            prop_assert_eq!(owners.len(), 1, "point {} owned by {:?}", g, &owners);
            owner[g] = owners[0];
        }

        // (2) Owned prefixes match box membership.
        for (i, s) in part.shards.iter().enumerate() {
            let mut from_box: Vec<u32> = (0..data.len() as u32)
                .filter(|&g| owner[g as usize] == i)
                .collect();
            from_box.sort_unstable();
            let mut prefix: Vec<u32> = s.global_ids[..s.owned].to_vec();
            prefix.sort_unstable();
            prop_assert_eq!(prefix, from_box, "shard {} owned prefix", i);
        }

        // (3) ε-halo completeness: the owner of either endpoint of a
        // close pair carries both endpoints.
        let present: Vec<std::collections::HashSet<u32>> = part
            .shards
            .iter()
            .map(|s| s.global_ids.iter().copied().collect())
            .collect();
        for a in 0..data.len() {
            for b in (a + 1)..data.len() {
                let d2: f64 = data
                    .point(a)
                    .iter()
                    .zip(data.point(b))
                    .map(|(x, y)| (x - y) * (x - y))
                    .sum();
                if d2 <= eps * eps {
                    prop_assert!(
                        present[owner[a]].contains(&(b as u32)),
                        "pair ({a},{b}) within eps but {b} absent from {a}'s shard"
                    );
                    prop_assert!(
                        present[owner[b]].contains(&(a as u32)),
                        "pair ({a},{b}) within eps but {a} absent from {b}'s shard"
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The parallel-prelude property: fanning the kd recursion across
    /// host lanes is a *charging* change, never a *structural* one. For
    /// random datasets over dimensions 2–6 and shard counts 1–32, the
    /// lane-parallel partition must equal the serial one exactly — same
    /// cut dimensions, same owned boxes, same owned prefixes, same
    /// ghost sets, same local point order — for any lane count.
    #[test]
    fn parallel_partition_equals_serial(
        dim in 2usize..=6,
        n in 20usize..160,
        seed in 1u64..10_000,
        family in 0usize..3,
        eps in 2.0f64..30.0,
        (shards, lanes) in (1usize..=32, 2usize..=8),
    ) {
        let data = match family {
            0 => uniform(dim, n, seed),
            1 => clustered(dim, n, 3, 5.0, 0.2, seed),
            _ => clustered(dim, n, 2, 1.0, 0.05, seed),
        };
        let serial = partition::partition(&data, eps, shards).unwrap();
        let par = partition::partition_par(&data, eps, shards, lanes).unwrap();
        prop_assert_eq!(&par.cut_dims, &serial.cut_dims);
        prop_assert_eq!(par.shards.len(), serial.shards.len());
        for (a, b) in par.shards.iter().zip(&serial.shards) {
            prop_assert_eq!(a.id, b.id);
            prop_assert_eq!(&a.lo, &b.lo, "shard {} lower bounds", a.id);
            prop_assert_eq!(&a.hi, &b.hi, "shard {} upper bounds", a.id);
            prop_assert_eq!(a.owned, b.owned, "shard {} owned count", a.id);
            prop_assert_eq!(
                &a.global_ids, &b.global_ids,
                "shard {} local id order", a.id
            );
        }
    }

    /// The fused-prelude property: building the cost model from the
    /// partitioner's shared sample pass must agree with the standalone
    /// two-pass calibration whenever both see every point (n below the
    /// sampling caps) — same sample, same neighbor/candidate counts,
    /// same grid-cell census — for any lane count. Timing-derived rates
    /// are excluded: they measure different walls by design.
    #[test]
    fn fused_calibration_matches_two_pass_calibration(
        dim in 1usize..=4,
        n in 30usize..250,
        seed in 1u64..10_000,
        eps in 2.0f64..20.0,
        lanes in 1usize..=8,
    ) {
        use gpu_self_join::shard::cost::{calibrate, calibrate_from_sample};
        let data = uniform(dim, n, seed);
        let spec = DeviceSpec::titan_x_pascal();
        let two_pass = calibrate(&data, eps, &spec).unwrap();
        let sp = partition::sample_pass(&data, lanes).unwrap();
        let fused = calibrate_from_sample(&sp, eps, &spec).unwrap();
        prop_assert_eq!(fused.len, two_pass.len);
        prop_assert_eq!(&fused.sample_ids, &two_pass.sample_ids);
        prop_assert_eq!(&fused.sample_neighbors, &two_pass.sample_neighbors);
        prop_assert_eq!(&fused.sample_candidates, &two_pass.sample_candidates);
        prop_assert_eq!(fused.non_empty_cells, two_pass.non_empty_cells);
        prop_assert_eq!(fused.avg_neighbors, two_pass.avg_neighbors);
        prop_assert_eq!(fused.avg_candidates, two_pass.avg_candidates);
    }

    /// The staged API composes to the one-shot entry point: sample pass →
    /// cut build → materialize yields the same partition `partition_par`
    /// returns, and the sample pass itself is lane-invariant.
    #[test]
    fn staged_prelude_composes(
        dim in 2usize..=4,
        n in 20usize..120,
        seed in 1u64..10_000,
        eps in 2.0f64..20.0,
        shards in 1usize..=8,
        lanes in 1usize..=4,
    ) {
        let data = uniform(dim, n, seed);
        let sp = partition::sample_pass(&data, lanes).unwrap();
        let sp1 = partition::sample_pass(&data, 1).unwrap();
        prop_assert_eq!(&sp.ids, &sp1.ids, "sample set depends on lane count");
        let cuts = partition::build_cuts(&sp, eps, shards, lanes).unwrap();
        let staged = partition::materialize(&data, &cuts, lanes).unwrap();
        let oneshot = partition::partition_par(&data, eps, shards, lanes).unwrap();
        prop_assert_eq!(staged.shards.len(), oneshot.shards.len());
        prop_assert_eq!(cuts.num_leaves(), oneshot.shards.len());
        for (a, b) in staged.shards.iter().zip(&oneshot.shards) {
            prop_assert_eq!(&a.global_ids, &b.global_ids, "shard {}", a.id);
            prop_assert_eq!(a.owned, b.owned);
        }
        // The cut tree's point→leaf assignment agrees with box ownership.
        for p in data.iter() {
            let leaf = cuts.leaf_of(p);
            prop_assert!(staged.shards[leaf].owns(p));
        }
    }
}

/// Satellite pin: the fused (CellMajor) path concatenates shard results —
/// the dedup pass must find nothing to merge even at aggressive shard
/// counts, on uniform and skewed data alike.
#[test]
fn fused_path_merges_without_duplicates() {
    for (data, eps) in [
        (uniform(2, 4000, 11), 2.0),
        (clustered(3, 3000, 4, 2.0, 0.1, 12), 6.0),
    ] {
        let out = ShardedSelfJoin::titan_x(4)
            .with_shards(8)
            .with_hot_path(HotPath::CellMajor)
            .run(&data, eps)
            .unwrap();
        assert!(out.report.shards.len() > 1, "want a multi-shard run");
        assert_eq!(out.report.duplicates_merged, 0);
        for s in &out.report.shards {
            assert_eq!(s.dropped_ghost_pairs, 0, "fused path filtered post-hoc");
        }
        let single = GpuSelfJoin::default_device().run(&data, eps).unwrap();
        assert_eq!(out.table, single.table);
    }
}

#[test]
fn sharded_matches_on_table_one_surrogates() {
    use gpu_self_join::datasets::{sdss, sw};
    let cases: Vec<(Dataset, f64)> = vec![
        (sdss::sdss2d(3000, 10), 1.2),
        (sw::sw2d(3000, 8), 2.0),
        (sw::sw3d(2000, 9), 6.0),
    ];
    for (i, (data, eps)) in cases.into_iter().enumerate() {
        let single = GpuSelfJoin::default_device().run(&data, eps).unwrap();
        let sharded = ShardedSelfJoin::titan_x(2 + i).run(&data, eps).unwrap();
        assert_eq!(sharded.table, single.table, "case {i}");
        assert_eq!(sharded.report.duplicates_merged, 0);
    }
}

#[test]
fn cost_scheduler_balances_skewed_clusters() {
    // Two dense clusters and a sparse background: equal-count shards have
    // very unequal pair counts, so a count-based assignment would load one
    // device far above the other. The cost-based LPT keeps the modeled
    // busy times within a reasonable band.
    let data = clustered(2, 20_000, 2, 1.0, 0.1, 77);
    let out = ShardedSelfJoin::titan_x(2).run(&data, 0.5).unwrap();
    let busy: Vec<f64> = out
        .report
        .devices
        .iter()
        .map(|t| t.busy.as_secs_f64())
        .collect();
    let (hi, lo) = (busy[0].max(busy[1]), busy[0].min(busy[1]));
    assert!(lo > 0.0, "one device sat idle: {busy:?}");
    assert!(
        hi / lo < 3.0,
        "cost-based schedule badly imbalanced: {busy:?}"
    );
    // And the predicted loads the scheduler balanced were indeed skewed
    // relative to the owned-point counts.
    assert_eq!(out.report.predicted_load.len(), 2);
}

#[test]
fn facade_exposes_sharded_engine() {
    use gpu_self_join::{DevicePool, ShardedConfig, ShardedSelfJoin};
    let pool = DevicePool::titan_x(2);
    let engine = ShardedSelfJoin::new(pool).with_config(ShardedConfig::default());
    let data = uniform(2, 1000, 5);
    let out = engine.run(&data, 3.0).unwrap();
    assert!(out.table.is_symmetric());
    assert!(out.table.is_irreflexive());
}
