//! Property and integration tests of the sharded multi-device engine:
//! the halo-ownership invariant must make the merged result pair-for-pair
//! identical to the single-device join, for any dataset, ε, shard count
//! and pool size.

use gpu_self_join::prelude::*;
use gpu_self_join::shard::partition;
use proptest::prelude::*;

/// Random dataset: dimension 1..=4, mixed uniform/clustered, with an ε
/// spanning sparse to dense neighbourhoods.
fn workload_strategy() -> impl Strategy<Value = (Dataset, f64)> {
    (
        1usize..=4,
        30usize..250,
        1u64..10_000,
        0.02f64..0.25,
        0usize..3,
    )
        .prop_map(|(dim, n, seed, eps_frac, family)| {
            let data = match family {
                0 => uniform(dim, n, seed),
                1 => clustered(dim, n, 3, 5.0, 0.2, seed),
                _ => clustered(dim, n, 2, 1.0, 0.05, seed),
            };
            let eps = (100.0 * eps_frac).max(2.0);
            (data, eps)
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The satellite property: for random datasets, ε and shard counts
    /// 1–4, the sharded neighbour table equals the single-device table
    /// pair-for-pair (NeighborTable construction canonically sorts both
    /// sides, so equality is exact pair equality).
    #[test]
    fn sharded_equals_single_device(
        (data, eps) in workload_strategy(),
        shards in 1usize..=4,
        devices in 1usize..=3,
    ) {
        let single = GpuSelfJoin::default_device().run(&data, eps).unwrap();
        let sharded = ShardedSelfJoin::titan_x(devices)
            .with_shards(shards)
            .run(&data, eps)
            .unwrap();
        prop_assert_eq!(&sharded.table, &single.table);
        prop_assert_eq!(sharded.report.duplicates_merged, 0);
        prop_assert_eq!(
            sharded.report.shards.iter().map(|s| s.owned).sum::<usize>(),
            data.len()
        );
    }

    /// Partition invariants: exclusive exhaustive ownership and ε-halo
    /// completeness along the split dimension.
    #[test]
    fn partition_invariants(
        (data, eps) in workload_strategy(),
        shards in 1usize..=4,
    ) {
        let part = partition::partition(&data, eps, shards).unwrap();
        // Ownership is a partition of the input.
        let mut owned: Vec<u32> = part
            .shards
            .iter()
            .flat_map(|s| s.global_ids[..s.owned].iter().copied())
            .collect();
        owned.sort_unstable();
        prop_assert_eq!(owned, (0..data.len() as u32).collect::<Vec<_>>());
        // Halo completeness: every foreign point within ε of a slab (in
        // the split dimension) is carried as a ghost.
        let j = part.split_dim;
        for s in &part.shards {
            let present: std::collections::HashSet<u32> =
                s.global_ids.iter().copied().collect();
            for (g, p) in data.iter().enumerate() {
                if p[j] >= s.lo - eps && p[j] <= s.hi + eps {
                    prop_assert!(
                        present.contains(&(g as u32)),
                        "point {} missing from shard [{}, {})", g, s.lo, s.hi
                    );
                }
            }
        }
    }
}

#[test]
fn sharded_matches_on_table_one_surrogates() {
    use gpu_self_join::datasets::{sdss, sw};
    let cases: Vec<(Dataset, f64)> = vec![
        (sdss::sdss2d(3000, 10), 1.2),
        (sw::sw2d(3000, 8), 2.0),
        (sw::sw3d(2000, 9), 6.0),
    ];
    for (i, (data, eps)) in cases.into_iter().enumerate() {
        let single = GpuSelfJoin::default_device().run(&data, eps).unwrap();
        let sharded = ShardedSelfJoin::titan_x(2 + i).run(&data, eps).unwrap();
        assert_eq!(sharded.table, single.table, "case {i}");
        assert_eq!(sharded.report.duplicates_merged, 0);
    }
}

#[test]
fn cost_scheduler_balances_skewed_clusters() {
    // Two dense clusters and a sparse background: equal-count shards have
    // very unequal pair counts, so a count-based assignment would load one
    // device far above the other. The cost-based LPT keeps the modeled
    // busy times within a reasonable band.
    let data = clustered(2, 20_000, 2, 1.0, 0.1, 77);
    let out = ShardedSelfJoin::titan_x(2).run(&data, 0.5).unwrap();
    let busy: Vec<f64> = out
        .report
        .devices
        .iter()
        .map(|t| t.busy.as_secs_f64())
        .collect();
    let (hi, lo) = (busy[0].max(busy[1]), busy[0].min(busy[1]));
    assert!(lo > 0.0, "one device sat idle: {busy:?}");
    assert!(
        hi / lo < 3.0,
        "cost-based schedule badly imbalanced: {busy:?}"
    );
    // And the predicted loads the scheduler balanced were indeed skewed
    // relative to the owned-point counts.
    assert_eq!(out.report.predicted_load.len(), 2);
}

#[test]
fn facade_exposes_sharded_engine() {
    use gpu_self_join::{DevicePool, ShardedConfig, ShardedSelfJoin};
    let pool = DevicePool::titan_x(2);
    let engine = ShardedSelfJoin::new(pool).with_config(ShardedConfig::default());
    let data = uniform(2, 1000, 5);
    let out = engine.run(&data, 3.0).unwrap();
    assert!(out.table.is_symmetric());
    assert!(out.table.is_irreflexive());
}
