//! Device-memory behaviour: batching under pressure, out-of-memory
//! surfacing, and allocation hygiene.

use gpu_self_join::join::SelfJoinConfig;
use gpu_self_join::prelude::*;
use gpu_self_join::SelfJoinError;

fn mib(m: usize) -> usize {
    m * 1024 * 1024
}

#[test]
fn results_invariant_under_memory_pressure() {
    let data = uniform(2, 3000, 21);
    let eps = 3.0;
    let reference = GpuSelfJoin::default_device().run(&data, eps).unwrap().table;
    for mem in [mib(64), mib(4), mib(1)] {
        let device = Device::new(DeviceSpec::titan_x_with_memory(mem));
        let out = GpuSelfJoin::new(device).run(&data, eps).unwrap();
        assert_eq!(out.table, reference, "memory {mem} changed the result");
    }
}

#[test]
fn tighter_memory_means_more_batches() {
    let data = uniform(2, 5000, 22);
    let eps = 6.0;
    let roomy = GpuSelfJoin::new(Device::new(DeviceSpec::titan_x_pascal()))
        .run(&data, eps)
        .unwrap();
    let tight = GpuSelfJoin::new(Device::new(DeviceSpec::titan_x_with_memory(512 * 1024)))
        .run(&data, eps)
        .unwrap();
    assert!(roomy.report.batching.batches >= 3, "paper minimum");
    assert!(
        tight.report.batching.batches > roomy.report.batching.batches,
        "tight: {} vs roomy: {}",
        tight.report.batching.batches,
        roomy.report.batching.batches
    );
    assert_eq!(tight.table, roomy.table);
}

#[test]
fn impossible_memory_surfaces_oom() {
    // Device too small to even hold the input coordinates.
    let data = uniform(2, 100_000, 23);
    let device = Device::new(DeviceSpec::titan_x_with_memory(64 * 1024));
    let err = GpuSelfJoin::new(device).run(&data, 1.0).unwrap_err();
    assert!(matches!(err, SelfJoinError::Device(_)), "{err}");
}

#[test]
fn device_memory_fully_released() {
    let device = Device::new(DeviceSpec::titan_x_pascal());
    let data = uniform(3, 2000, 24);
    for _ in 0..3 {
        let join = GpuSelfJoin::new(device.clone());
        let _ = join.run(&data, 6.0).unwrap();
        assert_eq!(device.used_bytes(), 0, "leak after join");
    }
}

#[test]
fn estimation_overshoot_is_bounded() {
    // The estimator's safety factor is 1.25; on uniform data the estimate
    // should stay within ~2x of the truth (gross overshoot wastes device
    // memory and batches).
    let data = uniform(2, 4000, 25);
    let out = GpuSelfJoin::default_device().run(&data, 2.5).unwrap();
    let est = out.report.batching.estimated_pairs as f64;
    let actual = out.report.batching.actual_pairs.max(1) as f64;
    assert!(
        est >= 0.8 * actual,
        "estimate {est} far below actual {actual}"
    );
    assert!(
        est <= 3.0 * actual,
        "estimate {est} far above actual {actual}"
    );
}

#[test]
fn min_batches_honoured_even_for_tiny_inputs() {
    let data = uniform(2, 1000, 26);
    let out = GpuSelfJoin::default_device().run(&data, 1.0).unwrap();
    assert!(out.report.batching.batches >= 3);
}

#[test]
fn custom_batching_config_respected() {
    let data = uniform(2, 2000, 27);
    let mut cfg = SelfJoinConfig::default();
    cfg.batching.min_batches = 7;
    let out = GpuSelfJoin::default_device()
        .with_config(cfg)
        .run(&data, 2.0)
        .unwrap();
    assert!(out.report.batching.batches >= 7);
}

#[test]
fn overlap_model_reports_sane_timeline() {
    let data = uniform(2, 3000, 28);
    let out = GpuSelfJoin::default_device().run(&data, 3.0).unwrap();
    let tl = &out.report.batching.timeline;
    assert!(
        tl.total <= tl.serial_total,
        "pipelining can't be slower than serial"
    );
    assert!(
        tl.total >= tl.compute_busy,
        "makespan below pure compute is impossible"
    );
}
