//! Workspace smoke test: the facade crate's advertised entry point (the
//! same path the crate-level doctest exercises) agrees with the
//! independent host-side reference join.

use gpu_self_join::prelude::*;

#[test]
fn facade_run_matches_host_reference() {
    let data = uniform(2, 2_000, 42);
    let eps = 2.0;

    let out = GpuSelfJoin::default_device()
        .run(&data, eps)
        .expect("GPU self-join on a small uniform dataset must succeed");

    let grid = GridIndex::build(&data, eps).expect("grid build");
    let host = host_self_join(&data, &grid);

    assert_eq!(
        out.table.total_pairs(),
        host.total_pairs(),
        "device join and host reference disagree on pair count"
    );
    assert_eq!(out.table, host, "device join and host reference disagree");
    assert!(out.table.is_symmetric());
    assert!(
        out.table.avg_neighbors() > 0.0,
        "ε=2 on 2k uniform points must find neighbors"
    );
}

#[test]
fn facade_reexports_are_wired() {
    // Each workspace library is reachable through the facade.
    let data = uniform(2, 300, 7);
    let eps = 4.0;

    let gpu = GpuSelfJoin::default_device().run(&data, eps).unwrap().table;
    let (rt, _) = rtree_self_join(&data, eps);
    assert_eq!(rt, gpu, "rtree baseline disagrees with GPU join");

    let (ego, _) = SuperEgo::default().self_join(&data, eps);
    assert_eq!(ego, gpu, "Super-EGO baseline disagrees with GPU join");

    let bf = gpu_brute_force(
        &gpu_self_join::Device::new(gpu_self_join::DeviceSpec::titan_x_pascal()),
        &data,
        eps,
    )
    .unwrap();
    assert_eq!(
        bf.pairs as usize,
        gpu.total_pairs(),
        "brute force pair count disagrees with GPU join"
    );
}
