//! Session-equivalence properties: a dataset-resident [`SelfJoinSession`]
//! must be an invisible optimization — every answer identical to a fresh
//! [`GpuSelfJoin::run`] at the same ε, under index reuse (including
//! ε′ < ε_built), concurrent sessions on a shared pool, and
//! rebuild-triggering ε sequences.

use gpu_self_join::prelude::*;
use gpu_self_join::DevicePool;
use proptest::prelude::*;

/// Random small dataset plus a base ε exercising varied cell geometry.
fn workload_strategy() -> impl Strategy<Value = (Dataset, f64)> {
    (
        1usize..=5,
        20usize..200,
        1u64..10_000,
        0.03f64..0.25,
        0usize..2,
    )
        .prop_map(|(dim, n, seed, eps_frac, family)| {
            let data = match family {
                0 => uniform(dim, n, seed),
                _ => clustered(dim, n, 3, 4.0, 0.3, seed),
            };
            let eps = (100.0 * eps_frac).max(2.0);
            (data, eps)
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 20, ..ProptestConfig::default() })]

    /// (a) Resident-index queries ≡ fresh `GpuSelfJoin::run`,
    /// pair-for-pair, including in-band reuse at ε′ < ε_built.
    #[test]
    fn resident_queries_match_fresh_runs(
        (data, eps) in workload_strategy(),
        fracs in collection::vec(0.5f64..1.0, 1..4),
        devices in 1usize..=2,
    ) {
        let session = SelfJoinSession::new(data.clone(), DevicePool::titan_x(devices));
        let join = GpuSelfJoin::default_device();

        // First query builds the index at eps.
        let first = session.query(eps).unwrap();
        prop_assert!(!first.reused_index);
        prop_assert_eq!(&first.table, &join.run(&data, eps).unwrap().table);

        // In-band shrunk queries reuse it and still answer exactly.
        for frac in fracs {
            let eps_q = eps * frac;
            let out = session.query(eps_q).unwrap();
            prop_assert!(out.reused_index, "frac {} must be in band", frac);
            prop_assert_eq!(
                &out.table,
                &join.run(&data, eps_q).unwrap().table,
                "frac {}", frac
            );
        }
    }

    /// (a′) Repeating the same ε must hit the estimate cache and stay
    /// exact (the cached count feeds buffer sizing, not the answer).
    #[test]
    fn repeated_epsilon_queries_stay_exact(
        (data, eps) in workload_strategy(),
    ) {
        let session = SelfJoinSession::single_device(data.clone());
        let first = session.query(eps).unwrap();
        let second = session.query(eps).unwrap();
        let third = session.query(eps).unwrap();
        prop_assert_eq!(&first.table, &second.table);
        prop_assert_eq!(&first.table, &third.table);
        let stats = session.stats();
        prop_assert_eq!(stats.estimate_hits, 2);
        prop_assert_eq!(stats.index_builds, 1);
    }

    /// (b) Concurrent sessions on a shared `DevicePool` each match their
    /// serial result — interleaving across leased devices never leaks
    /// between sessions.
    #[test]
    fn concurrent_sessions_match_serial_results(
        workloads in collection::vec(workload_strategy(), 2..=3),
        devices in 1usize..=3,
    ) {
        // Serial expectation per session, computed up front.
        let expected: Vec<NeighborTable> = workloads
            .iter()
            .map(|(data, eps)| {
                GpuSelfJoin::default_device().run(data, *eps).unwrap().table
            })
            .collect();

        let pool = DevicePool::titan_x(devices);
        let tables = std::thread::scope(|scope| {
            let handles: Vec<_> = workloads
                .iter()
                .map(|(data, eps)| {
                    let session = SelfJoinSession::new(data.clone(), pool.clone());
                    let eps = *eps;
                    scope.spawn(move || {
                        // Two queries each: a build and an in-band reuse.
                        let a = session.query(eps).unwrap().table;
                        let b = session.query(eps * 0.8).unwrap().table;
                        let c = session.query(eps).unwrap().table;
                        (a, b, c)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("session thread panicked"))
                .collect::<Vec<_>>()
        });

        for (i, ((data, eps), (a, b, c))) in workloads.iter().zip(&tables).enumerate() {
            prop_assert_eq!(a, &expected[i], "session {} first query", i);
            prop_assert_eq!(c, &expected[i], "session {} repeat query", i);
            let shrunk = GpuSelfJoin::default_device().run(data, eps * 0.8).unwrap();
            prop_assert_eq!(b, &shrunk.table, "session {} shrunk query", i);
        }
        // All leases returned; sessions dropped → all memory released.
        prop_assert_eq!(pool.total_used_bytes(), 0);
    }

    /// (c) The rebuild trigger is exactly the validity band: reuse iff
    /// `floor · ε_built ≤ ε′ ≤ ε_built`, tracked across an arbitrary ε
    /// sequence (each rebuild starts a new band).
    #[test]
    fn rebuild_triggers_exactly_on_band_exit(
        (data, eps) in workload_strategy(),
        steps in collection::vec((0.3f64..1.6, 0usize..=1), 1..6),
        floor in 0.4f64..0.9,
    ) {
        let session = SelfJoinSession::new(data.clone(), DevicePool::titan_x(1))
            .with_config(SessionConfig {
                reuse_floor: floor,
                ..SessionConfig::default()
            });
        let mut built: Option<f64> = None;
        let mut eps_q = eps;
        for (factor, reset) in steps {
            eps_q = if reset == 1 { eps * factor } else { eps_q * factor };
            let expect_reuse = built
                .map(|b| eps_q <= b && eps_q >= b * floor)
                .unwrap_or(false);
            prop_assert_eq!(session.would_reuse(eps_q), expect_reuse);
            let out = session.query(eps_q).unwrap();
            prop_assert_eq!(
                out.reused_index, expect_reuse,
                "eps_q {} built {:?} floor {}", eps_q, built, floor
            );
            if !expect_reuse {
                built = Some(eps_q);
            }
            prop_assert_eq!(session.epsilon_built(), built);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// (d) Snapshot eviction is an invisible optimization too: random
    /// evict/re-upload interleavings under concurrent sessions on a
    /// *budgeted* pool answer pair-for-pair like fresh joins, and the
    /// pool's snapshot ledger never exceeds the configured budget.
    #[test]
    fn eviction_interleavings_stay_exact_and_under_budget(
        seeds in collection::vec(1u64..10_000, 3),
        evict_pattern in collection::vec((0usize..3, 0usize..2), 4..10),
    ) {
        // Two devices, and same-sized workloads so snapshot footprints
        // are comparable: the budget below must cover the worst-case
        // concurrently-in-use set (one snapshot per running query) while
        // staying far under the full working set.
        let devices = 2usize;
        let workloads: Vec<(Dataset, f64)> = seeds
            .iter()
            .map(|&seed| (uniform(2, 400, seed), 4.0))
            .collect();

        // Measure the unbudgeted working set (every session resident on
        // every device), then budget 60% of it — enough for the three
        // in-flight queries (≤ 3 of 6 snapshots), too little for every
        // session to stay resident on every device.
        let probe = DevicePool::titan_x(devices);
        let full = {
            let sessions: Vec<_> = workloads
                .iter()
                .map(|(data, _)| SelfJoinSession::new(data.clone(), probe.clone()))
                .collect();
            for session in &sessions {
                for d in 0..devices {
                    session.query_on(4.0, d).unwrap();
                }
            }
            probe.memory_ledger().total()
        };
        prop_assert!(full > 0);
        let budget = full * 3 / 5;

        let expected: Vec<NeighborTable> = workloads
            .iter()
            .map(|(data, eps)| {
                GpuSelfJoin::default_device().run(data, *eps).unwrap().table
            })
            .collect();

        let pool = DevicePool::titan_x(devices);
        pool.memory_ledger().set_budget(Some(budget));
        let sessions: Vec<_> = workloads
            .iter()
            .map(|(data, _)| SelfJoinSession::new(data.clone(), pool.clone()))
            .collect();

        std::thread::scope(|scope| {
            for (i, session) in sessions.iter().enumerate() {
                let pattern = evict_pattern.clone();
                let pool = pool.clone();
                let eps = workloads[i].1;
                let expected = &expected[i];
                scope.spawn(move || {
                    for (round, &(victim_offset, device)) in pattern.iter().enumerate() {
                        let out = session.query(eps).unwrap();
                        assert_eq!(&out.table, expected, "session {i} round {round}");
                        assert!(
                            pool.memory_ledger().total() <= budget,
                            "session {i} round {round}: ledger {} over budget {budget}",
                            pool.memory_ledger().total()
                        );
                        // Manual eviction mixed into the stream: evict
                        // this session's snapshot on a pseudo-random
                        // device (no-op when the offset lands elsewhere
                        // or a query holds it).
                        if victim_offset == i % 3 {
                            session.evict_snapshot(device.min(devices - 1));
                        }
                    }
                });
            }
        });

        // Every session still answers exactly after the churn, and the
        // budget held to the end.
        for (i, session) in sessions.iter().enumerate() {
            let out = session.query(workloads[i].1).unwrap();
            prop_assert_eq!(&out.table, &expected[i], "session {} final", i);
        }
        prop_assert!(pool.memory_ledger().total() <= budget);
        prop_assert!(pool.total_used_bytes() <= budget, "resident snapshots are the only steady-state device memory");
    }
}

/// kNN on a resident session reuses the cached snapshot and matches the
/// rebuild-per-call `gpu_knn` exactly.
#[test]
fn session_knn_matches_fresh_gpu_knn() {
    let data = uniform(2, 400, 101);
    let eps = 6.0;
    let k = 7;
    let session = SelfJoinSession::single_device(data.clone());
    session.query(eps).unwrap();
    let uploads_before = session.stats().snapshot_uploads;
    let out = session.knn(eps, k).unwrap();
    assert!(out.reused_index);
    assert_eq!(
        session.stats().snapshot_uploads,
        uploads_before,
        "knn must ride the resident snapshot"
    );
    let device = Device::new(DeviceSpec::titan_x_pascal());
    let fresh = gpu_self_join::join::gpu_knn(&device, &data, eps, k).unwrap();
    assert_eq!(out.hits.len(), fresh.len());
    for (got, want) in out.hits.iter().zip(&fresh) {
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(want) {
            assert!((g.dist_sq - w.dist_sq).abs() < 1e-12);
        }
    }
}

/// Sessions hold device memory while resident and release everything on
/// drop — the leak check for the residency layer.
#[test]
fn session_memory_lifecycle() {
    let pool = DevicePool::titan_x(2);
    {
        let session = SelfJoinSession::new(uniform(2, 1500, 102), pool.clone());
        session.query(2.0).unwrap();
        session.query(2.0).unwrap();
        assert!(pool.total_used_bytes() > 0, "snapshots resident");
        // A rebuild replaces the generation; the old snapshots free.
        let used_one_generation = pool.total_used_bytes();
        session.query(5.0).unwrap();
        assert!(
            pool.total_used_bytes() <= used_one_generation * 2,
            "old generation must not leak"
        );
    }
    assert_eq!(pool.total_used_bytes(), 0, "drop releases everything");
}
