//! Service-level properties of `sj-serve`: whatever admission, fair-share
//! scheduling and snapshot eviction do to *when and where* a query runs,
//! every completed answer must stay pair-for-pair identical to a fresh
//! join, and the control loops must respect their configured bounds.

use gpu_self_join::prelude::*;
use gpu_self_join::serve::AdmissionConfig;
use gpu_self_join::{GpuSelfJoin, ServeError};
use std::time::Duration;

fn lenient_config() -> ServiceConfig {
    ServiceConfig {
        admission: AdmissionConfig {
            slo: Duration::from_secs(60),
            ..AdmissionConfig::default()
        },
        ..ServiceConfig::default()
    }
}

/// Multi-tenant, multi-dataset traffic across a pool: every completed
/// answer equals the fresh join at its (dataset, ε).
#[test]
fn mixed_tenant_traffic_is_exact() {
    let service = SelfJoinService::new(DevicePool::titan_x(2), lenient_config());
    let data_a = uniform(2, 900, 501);
    let data_b = clustered(2, 700, 3, 2.0, 0.3, 502);
    let id_a = service.register_dataset("syn", data_a.clone());
    let id_b = service.register_dataset("clustered", data_b.clone());
    let join = GpuSelfJoin::default_device();
    let eps_a = [2.0, 1.5, 1.8];
    let eps_b = [1.0, 0.8];

    let mut expected = Vec::new();
    let mut reqs = Vec::new();
    for (i, &eps) in eps_a.iter().enumerate() {
        expected.push(join.run(&data_a, eps).unwrap().table);
        reqs.push(
            QueryRequest::new(["alice", "bob"][i % 2], id_a, eps)
                .at(Duration::from_micros(i as u64)),
        );
    }
    for (i, &eps) in eps_b.iter().enumerate() {
        expected.push(join.run(&data_b, eps).unwrap().table);
        reqs.push(QueryRequest::new("carol", id_b, eps).at(Duration::from_micros(i as u64)));
    }
    let outcomes = service.submit_batch(reqs);
    for (outcome, want) in outcomes.into_iter().zip(&expected) {
        let out = outcome
            .expect("lenient SLO admits everything")
            .wait()
            .unwrap();
        assert_eq!(&out.table, want);
    }
    let m = service.metrics();
    assert_eq!(m.total.completed, 5);
    assert_eq!(m.total.rejected, 0);
    assert_eq!(m.tenants.len(), 3);
}

/// A snapshot budget below the working set forces evictions, the service
/// keeps the ledger under budget, and answers stay exact through the
/// evict/re-upload churn.
#[test]
fn snapshot_budget_evicts_and_stays_exact() {
    // First measure an unbudgeted working set: two datasets resident on
    // one device.
    let probe_pool = DevicePool::titan_x(1);
    let data_a = uniform(2, 1200, 503);
    let data_b = uniform(2, 1200, 504);
    let full = {
        let sa = SelfJoinSession::new(data_a.clone(), probe_pool.clone());
        let sb = SelfJoinSession::new(data_b.clone(), probe_pool.clone());
        sa.query(2.0).unwrap();
        sb.query(2.0).unwrap();
        probe_pool.memory_ledger().total()
    };
    assert!(full > 0);

    // Budget fits one-and-a-half snapshots: alternating datasets must
    // evict each other.
    let budget = full * 3 / 4;
    let pool = DevicePool::titan_x(1);
    let service = SelfJoinService::new(
        pool.clone(),
        ServiceConfig {
            snapshot_budget: Some(budget),
            ..lenient_config()
        },
    );
    let id_a = service.register_dataset("a", data_a.clone());
    let id_b = service.register_dataset("b", data_b.clone());
    let join = GpuSelfJoin::default_device();
    let want_a = join.run(&data_a, 2.0).unwrap().table;
    let want_b = join.run(&data_b, 2.0).unwrap().table;

    for round in 0..3 {
        for (id, want) in [(id_a, &want_a), (id_b, &want_b)] {
            let out = service
                .submit(QueryRequest::new("t", id, 2.0).at(Duration::from_millis(round)))
                .unwrap()
                .wait()
                .unwrap();
            assert_eq!(&out.table, want, "round {round}");
            assert!(
                pool.memory_ledger().total() <= budget,
                "ledger over budget in round {round}"
            );
        }
    }
    let m = service.metrics();
    assert!(m.snapshot_evictions > 0, "budget never triggered eviction");
    assert!(m.snapshot_reuploads > 0, "evicted snapshots re-uploaded");
    assert!(m.resident_bytes <= budget);
    assert_eq!(m.snapshot_budget, Some(budget));
}

/// Under a burst far beyond the SLO budget, admission sheds load with a
/// positive retry hint, everything admitted completes within the delay
/// window, and the baseline (admission off) admits the identical burst
/// whole.
#[test]
fn overload_is_shed_and_the_rest_meets_the_window() {
    let data = uniform(2, 1500, 505);
    let burst = 30usize;
    let mk = |enabled: bool, slo_ms: u64| {
        let service = SelfJoinService::new(
            DevicePool::titan_x(1),
            ServiceConfig {
                admission: AdmissionConfig {
                    enabled,
                    slo: Duration::from_millis(slo_ms),
                    delay_factor: 1.5,
                    ..AdmissionConfig::default()
                },
                ..ServiceConfig::default()
            },
        );
        let id = service.register_dataset("d", data.clone());
        // Calibrate the cost model so admission has a real projection.
        service.warm(id, &[2.5]).unwrap();
        service.warm(id, &[2.5]).unwrap();
        service.reset_metrics();
        (service, id)
    };

    // Tight SLO: part of the burst must shed.
    let (service, id) = mk(true, 1);
    let window =
        service.config().admission.slo.as_secs_f64() * service.config().admission.delay_factor;
    let reqs: Vec<_> = (0..burst)
        .map(|_| QueryRequest::new("flood", id, 2.5).at(Duration::ZERO))
        .collect();
    let outcomes = service.submit_batch(reqs);
    let mut admitted = 0;
    let mut rejected = 0;
    for outcome in outcomes {
        match outcome {
            Ok(ticket) => {
                admitted += 1;
                let out = ticket.wait().unwrap();
                // The delay window bounds the *projected* completion; the
                // realized one gets slack for single-query projection
                // error.
                assert!(
                    out.latency.as_secs_f64() <= window * 1.5,
                    "latency {:?} far beyond the window {window}",
                    out.latency
                );
            }
            Err(ServeError::Overloaded { retry_after }) => {
                rejected += 1;
                assert!(retry_after > Duration::ZERO);
            }
            Err(e) => panic!("unexpected error {e:?}"),
        }
    }
    assert!(admitted > 0, "some of the burst must fit the SLO budget");
    assert!(rejected > 0, "a 30-deep burst cannot fit a ~1-query SLO");

    // Admission off: the same burst is admitted whole.
    let (baseline, id) = mk(false, 1);
    let reqs: Vec<_> = (0..burst)
        .map(|_| QueryRequest::new("flood", id, 2.5).at(Duration::ZERO))
        .collect();
    for outcome in baseline.submit_batch(reqs) {
        outcome.expect("baseline admits everything").wait().unwrap();
    }
    assert_eq!(baseline.metrics().total.completed, burst as u64);
}

/// The tenant in-flight cap rejects a single tenant's flood without
/// touching other tenants.
#[test]
fn tenant_inflight_cap_is_per_tenant() {
    let data = uniform(2, 600, 506);
    let service = SelfJoinService::new(
        DevicePool::titan_x(1),
        ServiceConfig {
            admission: AdmissionConfig {
                slo: Duration::from_secs(60),
                tenant_max_inflight: 3,
                ..AdmissionConfig::default()
            },
            ..ServiceConfig::default()
        },
    );
    let id = service.register_dataset("d", data);
    let mut reqs: Vec<_> = (0..6)
        .map(|_| QueryRequest::new("flood", id, 2.0).at(Duration::ZERO))
        .collect();
    reqs.push(QueryRequest::new("light", id, 2.0).at(Duration::ZERO));
    let outcomes = service.submit_batch(reqs);
    let flood_rejected = outcomes[..6]
        .iter()
        .filter(|o| matches!(o, Err(ServeError::Overloaded { .. })))
        .count();
    assert!(flood_rejected >= 3, "cap 3 must shed the deep flood");
    assert!(outcomes[6].is_ok(), "the light tenant is untouched");
    for ticket in outcomes.into_iter().flatten() {
        ticket.wait().unwrap();
    }
}

/// Garbage ε surfaces as a join error on the ticket — never a panic in
/// the submit path, even with result-size estimates already cached.
#[test]
fn invalid_epsilon_errors_cleanly() {
    let service = SelfJoinService::new(DevicePool::titan_x(1), lenient_config());
    let id = service.register_dataset("d", uniform(2, 300, 508));
    // Cache two estimates so the nearest-ε projection path is live.
    service.warm(id, &[2.0, 1.5]).unwrap();
    for bad in [f64::NAN, -1.0, 0.0, f64::INFINITY] {
        let outcome = service
            .submit(QueryRequest::new("t", id, bad))
            .expect("admission passes garbage through to the query path")
            .wait();
        assert!(
            matches!(outcome, Err(ServeError::Join(_))),
            "eps {bad}: expected a join error, got {outcome:?}"
        );
    }
}

/// Metrics JSON exports what the report consumers need.
#[test]
fn metrics_json_has_the_service_counters() {
    let service = SelfJoinService::new(DevicePool::titan_x(1), lenient_config());
    let id = service.register_dataset("d", uniform(2, 400, 507));
    service
        .submit(QueryRequest::new("alice", id, 2.0))
        .unwrap()
        .wait()
        .unwrap();
    let json = service.metrics().to_json();
    for key in [
        "\"slo_secs\"",
        "\"snapshot_evictions\"",
        "\"resident_bytes\"",
        "\"qps\"",
        "\"p99_secs\"",
        "\"tenant\": \"alice\"",
        "\"_total\"",
    ] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
}
