//! Cross-algorithm equivalence: the repo's strongest correctness signal.
//!
//! Five independent implementations — the simulated-GPU grid join (with
//! and without UNICOMP), the host grid join, the R-tree search-and-refine
//! baseline, and Super-EGO — must produce the *identical* neighbour table
//! on the same input, across dimensionalities and data distributions.

use gpu_self_join::datasets::{sdss, sw};
use gpu_self_join::prelude::*;

fn all_agree(data: &Dataset, eps: f64) {
    let grid = GridIndex::build(data, eps).unwrap();
    let reference = host_self_join(data, &grid);

    let gpu = GpuSelfJoin::default_device()
        .unicomp(false)
        .run(data, eps)
        .unwrap();
    assert_eq!(gpu.table, reference, "GPU (full) diverged");

    let gpu_uni = GpuSelfJoin::default_device()
        .unicomp(true)
        .run(data, eps)
        .unwrap();
    assert_eq!(gpu_uni.table, reference, "GPU (unicomp) diverged");

    let (rt, _) = rtree_self_join(data, eps);
    assert_eq!(rt, reference, "R-tree diverged");

    let (ego, _) = SuperEgo::default().self_join(data, eps);
    assert_eq!(ego, reference, "Super-EGO diverged");

    // Brute force counts directed pairs.
    let device = Device::new(DeviceSpec::titan_x_pascal());
    let brute = gpu_brute_force(&device, data, eps).unwrap();
    assert_eq!(
        brute.pairs as usize,
        reference.total_pairs(),
        "brute-force count diverged"
    );
}

#[test]
fn uniform_2d() {
    all_agree(&uniform(2, 1200, 1), 3.0);
}

#[test]
fn uniform_3d() {
    all_agree(&uniform(3, 900, 2), 8.0);
}

#[test]
fn uniform_4d() {
    all_agree(&uniform(4, 700, 3), 15.0);
}

#[test]
fn uniform_5d() {
    all_agree(&uniform(5, 500, 4), 22.0);
}

#[test]
fn uniform_6d() {
    all_agree(&uniform(6, 400, 5), 30.0);
}

#[test]
fn clustered_2d() {
    all_agree(&clustered(2, 1200, 5, 1.0, 0.1, 6), 1.2);
}

#[test]
fn clustered_4d() {
    all_agree(&clustered(4, 600, 4, 2.0, 0.15, 7), 3.5);
}

#[test]
fn sw_surrogate_2d() {
    all_agree(&sw::sw2d(1000, 8), 4.0);
}

#[test]
fn sw_surrogate_3d() {
    all_agree(&sw::sw3d(800, 9), 8.0);
}

#[test]
fn sdss_surrogate() {
    all_agree(&sdss::sdss2d(1000, 10), 1.0);
}

#[test]
fn near_duplicate_heavy() {
    // Many coincident and near-coincident points: stress tie handling.
    let mut d = Dataset::new(2);
    for i in 0..300 {
        let x = (i % 10) as f64;
        d.push(&[x, x]);
        d.push(&[x + 1e-9, x - 1e-9]);
    }
    all_agree(&d, 1.0);
}

#[test]
fn epsilon_extremes() {
    let d = uniform(2, 300, 11);
    // Tiny eps: no pairs anywhere.
    all_agree(&d, 0.001);
    // Huge eps: complete graph.
    all_agree(&d, 200.0);
    let grid = GridIndex::build(&d, 200.0).unwrap();
    let t = host_self_join(&d, &grid);
    assert_eq!(t.total_pairs(), 300 * 299);
}

#[test]
fn one_dimensional_data() {
    // The paper evaluates 2–6-D, but the implementation supports 1-D.
    all_agree(&uniform(1, 1500, 12), 0.05);
}
