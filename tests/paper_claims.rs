//! Shape-level assertions for the paper's quantitative claims — the ones
//! that are checkable at test scale and don't depend on wall-clock noise.

use gpu_self_join::gpu::append::AppendBuffer;
use gpu_self_join::gpu::{launch_profiled, Device, DeviceSpec, LaunchConfig};
use gpu_self_join::join::kernels::{kernel_registers, SelfJoinKernel};
use gpu_self_join::join::{DeviceGrid, GridIndex, Pair};
use gpu_self_join::prelude::*;

/// Paper §V-B: "UNICOMP reduces both the index search overhead (cell
/// evaluations) and Euclidean distance calculations roughly by a factor of
/// two." We measure work as traced global-memory bytes requested by the
/// kernel — a direct proxy for cell scans + distance loads.
#[test]
fn unicomp_halves_traced_work() {
    for (dim, n, eps) in [(2usize, 2000usize, 3.0), (3, 1500, 8.0), (4, 1000, 14.0)] {
        let data = uniform(dim, n, 31);
        let grid = GridIndex::build(&data, eps).unwrap();
        let device = Device::new(DeviceSpec::titan_x_pascal());
        let dg = DeviceGrid::upload(&device, &data, &grid).unwrap();

        let mut requested = Vec::new();
        for unicomp in [false, true] {
            let results = AppendBuffer::<Pair>::new(device.pool(), n * n).unwrap();
            let kernel = SelfJoinKernel {
                grid: &dg,
                eps_sq: dg.epsilon * dg.epsilon,
                results: &results,
                query_offset: 0,
                query_count: n,
                unicomp,
                cell_order: false,
                ownership: None,
            };
            let (_, cache) = launch_profiled(&device, LaunchConfig::default(), n, &kernel);
            requested.push(cache.bytes_requested as f64);
        }
        let ratio = requested[0] / requested[1];
        assert!(
            (1.6..=2.4).contains(&ratio),
            "dim {dim}: work ratio {ratio:.2}, expected ~2x"
        );
    }
}

/// Paper Table II occupancy column, reproduced through the register model
/// and the CUDA-style occupancy calculator at 256-thread blocks.
#[test]
fn occupancy_matches_table_two() {
    use gpu_self_join::gpu::occupancy::{occupancy, KernelResources};
    let spec = DeviceSpec::titan_x_pascal();
    let occ = |dim: usize, unicomp: bool| {
        occupancy(
            &spec,
            KernelResources {
                registers_per_thread: kernel_registers(dim, unicomp),
                shared_mem_per_block: 0,
            },
            256,
        )
        .occupancy
    };
    assert_eq!(occ(2, false), 1.0);
    assert_eq!(occ(2, true), 0.75);
    assert_eq!(occ(5, false), 0.625);
    assert_eq!(occ(5, true), 0.5);
    assert_eq!(occ(6, false), 0.625);
    assert_eq!(occ(6, true), 0.5);
}

/// Paper §IV-D: with constant |D| and ε, higher dimensionality means
/// fewer non-empty adjacent cells per query (density falls), so the share
/// of the 3ⁿ virtual neighbours that actually exists collapses.
#[test]
fn adjacent_cell_occupancy_collapses_with_dimension() {
    let mut prev_fraction = f64::INFINITY;
    for dim in [2usize, 4, 6] {
        let data = uniform(dim, 3000, 32);
        let grid = GridIndex::build(&data, 5.0).unwrap();
        // Fraction of virtual cells that are non-empty.
        let virtual_cells: f64 = grid.cells_per_dim().iter().map(|&c| c as f64).product();
        let fraction = grid.non_empty_cells() as f64 / virtual_cells;
        assert!(
            fraction < prev_fraction,
            "dim {dim}: non-empty fraction did not fall"
        );
        prev_fraction = fraction;
    }
}

/// Paper §IV-C: index space is O(|D|), independent of the virtual cell
/// count — doubling the data roughly doubles the index, regardless of
/// dimension.
#[test]
fn index_size_scales_with_points_not_cells() {
    for dim in [2usize, 6] {
        let small = GridIndex::build(&uniform(dim, 2000, 33), 4.0).unwrap();
        let big = GridIndex::build(&uniform(dim, 4000, 33), 4.0).unwrap();
        // Growth is at most linear in |D| (sub-linear when the non-empty
        // cell set saturates, as happens in low dimensions)…
        let ratio = big.size_bytes() as f64 / small.size_bytes() as f64;
        assert!(
            (1.0..=2.3).contains(&ratio),
            "dim {dim}: size ratio {ratio:.2} not within [1, 2.3]"
        );
        // …and the absolute footprint stays a few tens of bytes per point,
        // no matter how large the virtual cell space is. The cell-major
        // coordinate snapshot adds 8·dim bytes/point on top of the
        // paper's B+G+A+M arrays — still O(|D|), still cell-count-free.
        assert!(
            big.size_bytes() <= (32 + 8 * dim) * 4000,
            "dim {dim}: {} bytes",
            big.size_bytes()
        );
    }
}

/// Paper §VI-C: skewed (real-world-like) data produces *fewer* non-empty
/// cells than uniform data of the same size and ε — uniform is the grid's
/// worst case.
#[test]
fn uniform_is_worst_case_for_cell_count() {
    let n = 5000;
    let eps = 2.0;
    let uni = GridIndex::build(&uniform(2, n, 34), eps).unwrap();
    let skew = GridIndex::build(&clustered(2, n, 6, 1.5, 0.1, 34), eps).unwrap();
    assert!(
        skew.non_empty_cells() < uni.non_empty_cells(),
        "skewed {} vs uniform {}",
        skew.non_empty_cells(),
        uni.non_empty_cells()
    );
}

/// Figure 1's selectivity trend: with |D| and ε fixed, average neighbors
/// fall monotonically (and steeply) with dimension.
#[test]
fn avg_neighbors_fall_with_dimension() {
    let mut prev = f64::INFINITY;
    for dim in 2..=5usize {
        let data = uniform(dim, 1200, 35);
        let out = GpuSelfJoin::default_device().run(&data, 8.0).unwrap();
        let avg = out.table.avg_neighbors();
        assert!(
            avg < prev,
            "dim {dim}: avg {avg} did not fall (prev {prev})"
        );
        prev = avg;
    }
}

/// The brute-force baseline's work is ε-independent: its pair *count*
/// changes with ε but its comparisons don't — checked via equal thread
/// counts and the ε-independent structure (here: just the count behaviour
/// plus agreement at two ε values).
#[test]
fn brute_force_agrees_at_multiple_epsilons() {
    let data = uniform(3, 800, 36);
    let device = Device::new(DeviceSpec::titan_x_pascal());
    for eps in [2.0, 10.0] {
        let r = gpu_brute_force(&device, &data, eps).unwrap();
        let reference = GpuSelfJoin::default_device().run(&data, eps).unwrap();
        assert_eq!(r.pairs as usize, reference.table.total_pairs());
    }
}
