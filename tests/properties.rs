//! Property-based tests over the public API.

use gpu_self_join::prelude::*;
use proptest::prelude::*;

/// Random small dataset: dimension 1..=6, 10..300 points, coordinates in
/// a box whose scale varies so cell geometry is exercised broadly.
fn dataset_strategy() -> impl Strategy<Value = (Dataset, f64)> {
    (1usize..=6, 10usize..200, 1u64..10_000, 0.02f64..0.3).prop_map(|(dim, n, seed, eps_frac)| {
        let data = uniform(dim, n, seed);
        // ε as a fraction of the [0,100] box, floored to avoid
        // CellSpaceOverflow in high dimensions.
        let eps = (100.0 * eps_frac).max(2.0);
        (data, eps)
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn join_is_symmetric_and_irreflexive((data, eps) in dataset_strategy()) {
        let out = GpuSelfJoin::default_device().run(&data, eps).unwrap();
        prop_assert!(out.table.is_symmetric());
        prop_assert!(out.table.is_irreflexive());
    }

    #[test]
    fn unicomp_is_result_invariant((data, eps) in dataset_strategy()) {
        let with = GpuSelfJoin::default_device().unicomp(true).run(&data, eps).unwrap();
        let without = GpuSelfJoin::default_device().unicomp(false).run(&data, eps).unwrap();
        prop_assert_eq!(with.table, without.table);
    }

    #[test]
    fn join_matches_quadratic_scan((data, eps) in dataset_strategy()) {
        let out = GpuSelfJoin::default_device().run(&data, eps).unwrap();
        let eps_sq = eps * eps;
        for i in 0..data.len() {
            let expected: Vec<u32> = (0..data.len())
                .filter(|&j| j != i && euclidean_sq(data.point(i), data.point(j)) <= eps_sq)
                .map(|j| j as u32)
                .collect();
            prop_assert_eq!(out.table.neighbors(i), &expected[..], "point {}", i);
        }
    }

    #[test]
    fn neighbor_count_monotone_in_epsilon((data, eps) in dataset_strategy()) {
        let small = GpuSelfJoin::default_device().run(&data, eps).unwrap();
        let large = GpuSelfJoin::default_device().run(&data, eps * 1.7).unwrap();
        prop_assert!(large.table.total_pairs() >= small.table.total_pairs());
        // Containment, not just counts: every small-ε neighbor survives.
        for i in 0..data.len() {
            for &q in small.table.neighbors(i) {
                prop_assert!(large.table.neighbors(i).binary_search(&q).is_ok());
            }
        }
    }

    #[test]
    fn grid_size_linear_in_points((data, eps) in dataset_strategy()) {
        let grid = GridIndex::build(&data, eps).unwrap();
        // O(|D|) with small constants: B+G+A+M ≤ 24 bytes/point + slack,
        // plus 8·dim bytes/point for the cell-major coordinate snapshot.
        prop_assert!(grid.size_bytes() <= (32 + 8 * data.dim()) * data.len() + 1024);
        prop_assert!(grid.non_empty_cells() <= data.len());
    }

    #[test]
    fn rtree_and_superego_agree_with_gpu((data, eps) in dataset_strategy()) {
        let gpu = GpuSelfJoin::default_device().run(&data, eps).unwrap();
        let (rt, _) = rtree_self_join(&data, eps);
        prop_assert_eq!(&rt, &gpu.table);
        let (ego, _) = SuperEgo::default().self_join(&data, eps);
        prop_assert_eq!(&ego, &gpu.table);
    }
}
