//! Property tests for the cell-major hot path: the reordered layout ×
//! {full, UNICOMP} × dims 2–6 must produce neighbor tables identical to
//! the pre-existing per-thread kernels and to the host reference join —
//! including when driven through the sharded multi-device engine.

use gpu_self_join::join::host_join::host_self_join;
use gpu_self_join::prelude::*;
use proptest::prelude::*;

/// Random dataset across the kernels' full dimensional range, with ε
/// scaled so higher dimensions keep a non-trivial neighbor count.
fn dataset_strategy() -> impl Strategy<Value = (Dataset, f64)> {
    (2usize..=6, 20usize..160, 1u64..10_000, 0.03f64..0.25).prop_map(|(dim, n, seed, eps_frac)| {
        let data = uniform(dim, n, seed);
        let eps = (100.0 * eps_frac * dim as f64 / 2.0).max(2.0);
        (data, eps)
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// The load-bearing equivalence: cell-major ≡ per-thread ≡ host, for
    /// both traversal modes, on the same prebuilt index.
    #[test]
    fn cell_major_matches_per_thread_and_host((data, eps) in dataset_strategy()) {
        let grid = GridIndex::build(&data, eps).unwrap();
        let host = host_self_join(&data, &grid);
        for unicomp in [false, true] {
            let cm = GpuSelfJoin::default_device()
                .unicomp(unicomp)
                .hot_path(HotPath::CellMajor)
                .run_on_grid(&data, &grid)
                .unwrap();
            let pt = GpuSelfJoin::default_device()
                .unicomp(unicomp)
                .hot_path(HotPath::PerThread)
                .run_on_grid(&data, &grid)
                .unwrap();
            prop_assert_eq!(&cm.table, &host, "cell-major vs host, unicomp={}", unicomp);
            prop_assert_eq!(&pt.table, &host, "per-thread vs host, unicomp={}", unicomp);
        }
    }

    /// The sharded engine running the cell-major path per shard is
    /// pair-for-pair identical to the per-thread path and the host join,
    /// with a clean (duplicate-free) ownership merge.
    #[test]
    fn cell_major_matches_through_sharded_engine((data, eps) in dataset_strategy()) {
        let grid = GridIndex::build(&data, eps).unwrap();
        let host = host_self_join(&data, &grid);
        let cm = ShardedSelfJoin::titan_x(2)
            .with_shards(3)
            .with_hot_path(HotPath::CellMajor)
            .run(&data, eps)
            .unwrap();
        let pt = ShardedSelfJoin::titan_x(2)
            .with_shards(3)
            .with_hot_path(HotPath::PerThread)
            .run(&data, eps)
            .unwrap();
        prop_assert_eq!(&cm.table, &host);
        prop_assert_eq!(&pt.table, &host);
        prop_assert_eq!(cm.report.duplicates_merged, 0);
        prop_assert_eq!(pt.report.duplicates_merged, 0);
    }
}
