//! Galaxy pair finding on the SDSS surrogate — the paper's astronomy
//! workload (its SDSS- datasets are DR12 galaxies on a redshift shell).
//!
//! Finds close galaxy pairs (candidate interacting systems) at a small
//! angular separation, and contrasts the GPU self-join with the CPU
//! baselines on strongly clustered sky data — the regime where the paper
//! notes the grid index beats its uniform worst case because far fewer
//! cells are non-empty.
//!
//! ```sh
//! cargo run --release --example astronomy
//! ```

use gpu_self_join::datasets::sdss;
use gpu_self_join::prelude::*;
use std::time::Instant;

fn main() {
    // 80k galaxies over the SDSS footprint (RA 110–260°, Dec −5–70°).
    let galaxies = sdss::sdss2d(80_000, 2026);
    let eps = 0.05; // degrees — close-pair scale

    println!("{} galaxies, close-pair separation {eps}°", galaxies.len());

    // GPU-SJ with UNICOMP.
    let join = GpuSelfJoin::default_device();
    let t = Instant::now();
    let out = join.run(&galaxies, eps).expect("self-join failed");
    let gpu_time = t.elapsed();

    // CPU baselines on the same data.
    let t = Instant::now();
    let (ego_table, _) = SuperEgo::default().self_join(&galaxies, eps);
    let ego_time = t.elapsed();
    assert_eq!(out.table, ego_table, "GPU and Super-EGO must agree");

    let undirected_pairs = out.table.total_pairs() / 2;
    println!("close pairs found:   {undirected_pairs}");
    println!("avg companions:      {:.3}", out.table.avg_neighbors());
    println!("non-empty grid cells {}", out.report.non_empty_cells);
    println!("GPU-SJ (unicomp):    {gpu_time:?}");
    println!("Super-EGO:           {ego_time:?}");

    // Rank the busiest systems (most companions within eps).
    let mut ranked: Vec<(usize, usize)> = (0..galaxies.len())
        .map(|i| (out.table.neighbors(i).len(), i))
        .collect();
    ranked.sort_unstable_by(|a, b| b.cmp(a));
    println!("\ndensest systems:");
    for &(companions, i) in ranked.iter().take(5) {
        let p = galaxies.point(i);
        println!(
            "  galaxy {i} (RA {:.3}°, Dec {:+.3}°): {companions} companions",
            p[0], p[1]
        );
    }

    // Clustered sky data: the densest system should wildly exceed the mean
    // (the surrogate models cluster cores), and isolated field galaxies
    // should exist.
    assert!(ranked[0].0 as f64 > 10.0 * out.table.avg_neighbors().max(0.1));
    assert!(
        ranked.last().unwrap().0 == 0,
        "field galaxies should be isolated"
    );
}
