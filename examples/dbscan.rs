//! DBSCAN built on the GPU self-join — the paper's motivating use case.
//!
//! The paper's introduction motivates the self-join as a building block
//! for density-based clustering: DBSCAN's range queries over *every*
//! point are exactly a self-join, and computing them all at once
//! (neighbour table first, cluster second) beats issuing them one at a
//! time inside the clustering loop. The clustering itself lives in the
//! `sj-clustering` crate; this example drives the full pipeline on a
//! synthetic dataset with known structure.
//!
//! ```sh
//! cargo run --release --example dbscan
//! ```

use gpu_self_join::clustering::{dbscan, Label};
use gpu_self_join::prelude::*;

fn main() {
    // Five dense blobs plus 5% uniform noise.
    let data = clustered(2, 40_000, 5, 1.2, 0.05, 7);
    let epsilon = 0.9;
    let min_pts = 8;

    // Step 1 (the paper's contribution): all range queries at once.
    let join = GpuSelfJoin::default_device();
    let out = join.run(&data, epsilon).expect("self-join failed");
    println!(
        "self-join: {} pairs in {:?} measured / {:?} modeled device time ({} batches)",
        out.table.total_pairs(),
        out.report.total,
        out.report.modeled_total,
        out.report.batching.batches
    );

    // Step 2: cluster from the neighbour table.
    let t = std::time::Instant::now();
    let clustering = dbscan(&out.table, min_pts);
    println!(
        "dbscan: {} clusters in {:?}",
        clustering.num_clusters(),
        t.elapsed()
    );

    let noise = clustering.noise_count();
    println!(
        "noise points: {} ({:.1}%)",
        noise,
        100.0 * noise as f64 / data.len() as f64
    );
    let mut sizes = clustering.cluster_sizes();
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    println!("largest clusters: {:?}", &sizes[..sizes.len().min(8)]);

    // The generator planted 5 blobs; DBSCAN should find a handful of
    // dominant clusters holding most of the mass.
    let top5: usize = sizes.iter().take(5).sum();
    assert!(
        top5 as f64 > 0.7 * data.len() as f64,
        "expected >=70% of points in the top clusters, got {top5}"
    );
    assert!(clustering
        .labels()
        .iter()
        .all(|&l| l == Label::Noise || matches!(l, Label::Cluster(_))));
    println!("ok: clustering structure recovered");
}
