//! k-nearest-neighbour search on the ε-grid index — the paper's stated
//! future work (§VII), implemented via expanding cell rings.
//!
//! Demonstrates the kNN API on clustered data and shows the cell-width
//! trade-off: ε is a pure tuning knob here (smaller cells → more rings
//! but fewer point scans per ring), with results invariant.
//!
//! ```sh
//! cargo run --release --example knn_search
//! ```

use gpu_self_join::join::knn::gpu_knn;
use gpu_self_join::prelude::*;
use std::time::Instant;

fn main() {
    let data = clustered(2, 30_000, 6, 1.5, 0.1, 99);
    let k = 8;
    let device = Device::new(DeviceSpec::titan_x_pascal());

    println!("{} points, k = {k}", data.len());
    println!(
        "{:>10} {:>12} {:>14}",
        "cell eps", "host wall", "result hash"
    );
    let mut reference: Option<u64> = None;
    for cell_eps in [0.5, 1.0, 2.0, 4.0] {
        let t = Instant::now();
        let grouped = gpu_knn(&device, &data, cell_eps, k).expect("knn failed");
        let wall = t.elapsed();
        // Order-invariant digest of all (query, neighbor) memberships so we
        // can show the cell width doesn't change the answer. (Exact ties
        // may swap ids; hash distances instead, rounded.)
        let mut digest = 0u64;
        for (q, hits) in grouped.iter().enumerate() {
            for h in hits {
                let d = (h.dist_sq * 1e9).round() as u64;
                digest = digest.wrapping_add((q as u64 + 1).wrapping_mul(d | 1));
            }
        }
        println!("{cell_eps:>10} {wall:>12.2?} {digest:>14x}");
        match reference {
            None => reference = Some(digest),
            Some(r) => assert_eq!(r, digest, "cell width changed kNN results"),
        }
    }

    // Show one neighborhood.
    let grouped = gpu_knn(&device, &data, 1.0, k).unwrap();
    let q = 4242;
    println!(
        "\n{k} nearest neighbours of point {q} at {:?}:",
        data.point(q)
    );
    for hit in &grouped[q] {
        println!("  #{:<6} dist {:.4}", hit.neighbor, hit.dist_sq.sqrt());
    }
    // Distances are sorted ascending by construction.
    assert!(grouped[q].windows(2).all(|w| w[0].dist_sq <= w[1].dist_sq));
    println!("ok");
}
