//! Quickstart: index a point cloud and run the GPU self-join.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use gpu_self_join::prelude::*;

fn main() {
    // 50k uniformly distributed 3-D points in [0, 100]³.
    let data = uniform(3, 50_000, 42);
    let epsilon = 2.0;

    // The default device is a simulated TITAN X (Pascal); the default
    // configuration enables UNICOMP and ≥3-batch result streaming.
    let join = GpuSelfJoin::default_device();
    let out = join.run(&data, epsilon).expect("self-join failed");

    println!("points:          {}", data.len());
    println!("epsilon:         {epsilon}");
    println!("directed pairs:  {}", out.table.total_pairs());
    println!("avg neighbors:   {:.2}", out.table.avg_neighbors());
    println!("non-empty cells: {}", out.report.non_empty_cells);
    println!("index size:      {} KiB", out.report.index_bytes / 1024);
    println!("batches:         {}", out.report.batching.batches);
    println!(
        "occupancy:       {:.1}% (limited by {})",
        out.report.occupancy.occupancy * 100.0,
        out.report.occupancy.limiter
    );
    println!("grid build:      {:?}", out.report.grid_build);
    println!("device pipeline: {:?}", out.report.device_pipeline);
    println!("total:           {:?}", out.report.total);

    // Inspect one point's neighborhood.
    let p = 1234;
    let neighbors = out.table.neighbors(p);
    println!(
        "\npoint {p} at {:?} has {} neighbors within {epsilon}",
        data.point(p),
        neighbors.len()
    );
    for &q in neighbors.iter().take(5) {
        println!(
            "  -> {q} at distance {:.3}",
            euclidean(data.point(p), data.point(q as usize))
        );
    }

    // Sanity: the result is symmetric and self-free by construction.
    assert!(out.table.is_symmetric());
    assert!(out.table.is_irreflexive());
}
