//! Multi-device scaling: shard a skewed workload across a pool of
//! simulated GPUs and compare against a single device.
//!
//! ```sh
//! cargo run --release --example multi_device
//! ```

use gpu_self_join::prelude::*;

fn main() {
    // A skewed 2-D workload: dense clusters over a sparse background —
    // the regime where scheduling shards by *predicted cost* (not point
    // count) is what keeps the devices balanced.
    let data = clustered(2, 40_000, 6, 2.0, 0.15, 7);
    let epsilon = 0.6;

    let single = GpuSelfJoin::default_device()
        .run(&data, epsilon)
        .expect("single-device join failed");
    println!("single device : modeled {:?}", single.report.modeled_total);

    for devices in [2usize, 4, 8] {
        let engine = ShardedSelfJoin::titan_x(devices);
        let out = engine.run(&data, epsilon).expect("sharded join failed");
        let r = &out.report;

        // The sharded result is pair-for-pair identical to the
        // single-device one — the halo-ownership invariant at work.
        assert_eq!(out.table, single.table);
        assert_eq!(r.duplicates_merged, 0);

        println!(
            "{devices} devices     : modeled {:?} ({:.2}x), {} shards, {} ghosts ({:.1}%)",
            r.modeled_total,
            single.report.modeled_total.as_secs_f64() / r.modeled_total.as_secs_f64(),
            r.shards.len(),
            r.ghost_points,
            100.0 * r.ghost_points as f64 / data.len() as f64
        );
        for (d, tally) in r.devices.iter().enumerate() {
            println!(
                "  device {d}: {} shards, {} launches, busy {:?}",
                tally.items, tally.launches, tally.busy
            );
        }
    }

    println!(
        "\npairs: {} (avg {:.2} neighbors/point) — identical on every pool size",
        single.table.total_pairs(),
        single.table.avg_neighbors()
    );
}
