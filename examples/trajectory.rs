//! Ionosphere contact search on the SW surrogate under tight device
//! memory — a showcase of the result-set batching scheme (paper §V-A).
//!
//! The SW- datasets (lat/lon/TEC space-weather measurements) are dense:
//! at moderate ε each point has many neighbours, and the result set
//! quickly outgrows device memory. This example runs the same join on a
//! simulated device whose global memory has been squeezed, forcing the
//! batching executor to split the work — and verifies the answer never
//! changes while the batch count and the modeled transfer/compute overlap
//! shift.
//!
//! ```sh
//! cargo run --release --example trajectory
//! ```

use gpu_self_join::datasets::sw;
use gpu_self_join::join::SelfJoinConfig;
use gpu_self_join::prelude::*;

fn main() {
    // 60k measurement positions (lat, lon, TEC).
    let data = sw::sw3d(60_000, 11);
    let eps = 3.0;

    let mut reference = None;
    println!("SW3D surrogate: {} points, eps {eps}\n", data.len());
    println!(
        "{:>12} {:>8} {:>10} {:>12} {:>12} {:>9}",
        "device mem", "batches", "retries", "pipelined", "serial", "overlap"
    );
    for mem_mib in [4096usize, 64, 16] {
        let device = Device::new(DeviceSpec::titan_x_with_memory(mem_mib * 1024 * 1024));
        let join = GpuSelfJoin::new(device).with_config(SelfJoinConfig::default());
        let out = join.run(&data, eps).expect("self-join failed");
        let b = &out.report.batching;
        println!(
            "{:>9}MiB {:>8} {:>10} {:>12?} {:>12?} {:>8.0}%",
            mem_mib,
            b.batches,
            b.overflow_retries,
            b.timeline.total,
            b.timeline.serial_total,
            b.timeline.overlap_efficiency() * 100.0
        );
        match &reference {
            None => reference = Some(out.table),
            Some(r) => assert_eq!(r, &out.table, "batching must not change results"),
        }
    }

    let table = reference.unwrap();
    println!(
        "\ncontacts: {} directed pairs, {:.1} avg neighbours/measurement",
        table.total_pairs(),
        table.avg_neighbors()
    );

    // Where is the ionosphere densest? (Hotspot receiver clusters.)
    let busiest = (0..data.len())
        .max_by_key(|&i| table.neighbors(i).len())
        .unwrap();
    let p = data.point(busiest);
    println!(
        "densest measurement: #{busiest} at lat {:.1}°, lon {:.1}°, TEC {:.1} ({} contacts)",
        p[0],
        p[1],
        p[2],
        table.neighbors(busiest).len()
    );
    assert!(table.is_symmetric());
}
