//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the thin slice of `rand` it actually uses: a deterministic
//! seedable generator ([`rngs::StdRng`]), the [`Rng`] extension trait with
//! `gen_range`/`gen_bool`/`gen`, and [`SeedableRng`]. The generator is
//! xoshiro256++ seeded through SplitMix64 — high-quality, fast, and fully
//! deterministic across platforms, which is all the workspace's seeded
//! dataset generators require. Stream-for-stream output does *not* match
//! upstream `StdRng` (ChaCha12); nothing in the workspace depends on the
//! upstream stream, only on determinism.

use std::ops::Range;

/// Low-level generator interface: a source of uniformly random bits.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed, expanding it to full state.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that `Rng::gen` can produce.
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that `Rng::gen_range` can sample from.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Multiply-shift bounded sampling (Lemire); bias is < 2^-64
                // and irrelevant for workload generation.
                let x = rng.next_u64() as u128;
                self.start + ((x * span) >> 64) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                let x = rng.next_u64() as u128;
                lo + ((x * span) >> 64) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                let v = self.start + unit * (self.end - self.start);
                // start + unit*(end-start) can round up to exactly `end`
                // (e.g. 110.0..260.0 with unit near 1); clamp to keep the
                // upstream half-open contract.
                v.min(self.end.next_down())
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Extension trait with the convenience sampling methods.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        f64::sample_standard(self) < p
    }

    /// Samples a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seeded generator: xoshiro256++ with SplitMix64 seeding.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias kept for API parity with upstream `rand`.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0..u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(-2.5f64..3.5);
            assert!((-2.5..3.5).contains(&y));
            let z = r.gen_range(5u32..=5);
            assert_eq!(z, 5);
        }
    }

    #[test]
    fn float_range_never_returns_end() {
        // Regression: rounding can push start + unit*(end-start) to exactly
        // `end`; the half-open contract requires strictly less.
        let mut r = StdRng::seed_from_u64(13);
        for _ in 0..100_000 {
            let v = r.gen_range(110.0f64..260.0);
            assert!((110.0..260.0).contains(&v));
        }
        // Denormal-width range still respects bounds.
        let tiny = f64::MIN_POSITIVE;
        for _ in 0..1000 {
            let v = r.gen_range(0.0..tiny);
            assert!(v < tiny);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(9);
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn float_unit_interval() {
        let mut r = StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
