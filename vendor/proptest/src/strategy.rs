//! Strategies: samplable descriptions of value families.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A family of values that can be sampled. Upstream proptest builds value
/// *trees* for shrinking; this shim samples directly.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms sampled values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { base: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.sample(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                // Wrapping arithmetic handles signed ranges: sign extension
                // cancels in the subtraction, leaving the true span.
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                // Span of a full-width inclusive range would overflow u64;
                // the workspace never uses one, keep the arithmetic simple.
                let span = (hi as u128).wrapping_sub(lo as u128) as u64 + 1;
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let v = self.start + (rng.unit_f64() as $t) * (self.end - self.start);
                // start + unit*(end-start) can round up to exactly `end`;
                // clamp to preserve the half-open contract.
                v.min(self.end.next_down())
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}
