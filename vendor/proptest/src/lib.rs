//! Offline stand-in for `proptest`.
//!
//! Supports the strategy subset this workspace's property tests use:
//! numeric range strategies (`0u64..100`, `0.0f64..1.0`, inclusive forms),
//! tuple strategies up to arity 6, [`Strategy::prop_map`],
//! [`collection::vec`], the [`proptest!`] macro with an optional
//! `#![proptest_config(...)]` header, and `prop_assert!`/`prop_assert_eq!`/
//! `prop_assert_ne!`.
//!
//! Differences from upstream, deliberate for an offline shim: no shrinking
//! (a failing case reports its values via the panic message and the
//! deterministic per-test seed reproduces it), and `prop_assert*` are plain
//! `assert*` (failures abort the case immediately).

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::Strategy;
pub use test_runner::{ProptestConfig, TestRng};

pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr);) => {};
    (config = ($cfg:expr);
        $(#[$attr:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            let strategies = ($($strat,)+);
            for case in 0..config.cases {
                let ($($pat,)+) = $crate::strategy::Strategy::sample(&strategies, &mut rng);
                let run = || { $body };
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run));
                if let Err(payload) = result {
                    eprintln!(
                        "proptest case {}/{} of {} failed (deterministic seed; rerun reproduces it)",
                        case + 1, config.cases, stringify!($name),
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::__proptest_impl!{ config = ($cfg); $($rest)* }
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn range_strategies_in_bounds() {
        let mut rng = TestRng::deterministic("range_strategies_in_bounds");
        for _ in 0..1000 {
            let x = (3u64..17).sample(&mut rng);
            assert!((3..17).contains(&x));
            let y = (1usize..=6).sample(&mut rng);
            assert!((1..=6).contains(&y));
            let z = (0.25f64..0.75).sample(&mut rng);
            assert!((0.25..0.75).contains(&z));
        }
    }

    #[test]
    fn signed_ranges_do_not_overflow() {
        // Regression: span arithmetic must wrap (debug builds panicked on
        // sign-extended subtraction for negative starts).
        let mut rng = TestRng::deterministic("signed_ranges_do_not_overflow");
        for _ in 0..1000 {
            let x = (-5i32..5).sample(&mut rng);
            assert!((-5..5).contains(&x));
            let y = (-100i64..=-10).sample(&mut rng);
            assert!((-100..=-10).contains(&y));
        }
    }

    #[test]
    fn float_range_stays_below_end() {
        // Regression: rounding in start + unit*(end-start) must not yield
        // exactly `end`.
        let mut rng = TestRng::deterministic("float_range_stays_below_end");
        for _ in 0..100_000 {
            let v = (110.0f64..260.0).sample(&mut rng);
            assert!(v < 260.0);
        }
    }

    #[test]
    fn tuple_and_map_compose() {
        let mut rng = TestRng::deterministic("tuple_and_map_compose");
        let strat = (0u32..10, 0u32..10).prop_map(|(a, b)| a + b);
        for _ in 0..1000 {
            assert!(strat.sample(&mut rng) < 19);
        }
    }

    #[test]
    fn vec_strategy_respects_len() {
        let mut rng = TestRng::deterministic("vec_strategy_respects_len");
        let strat = collection::vec(0u8..4, 2..=5);
        for _ in 0..1000 {
            let v = strat.sample(&mut rng);
            assert!((2..=5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 4));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

        #[test]
        fn macro_single_binding(x in 0u64..100) {
            prop_assert!(x < 100);
        }

        #[test]
        fn macro_tuple_pattern((a, b) in (0u32..5, 5u32..10)) {
            prop_assert!(a < b);
        }

        #[test]
        fn macro_multiple_bindings(
            v in collection::vec(0u32..7, 1..=4),
            k in 1usize..3,
        ) {
            prop_assert!(!v.is_empty() && v.len() <= 4);
            prop_assert_ne!(k, 0);
        }
    }

    proptest! {
        #[test]
        fn macro_default_config(x in 0i32..10) {
            prop_assert_eq!(x, x);
        }
    }
}
