//! Test configuration and the deterministic generator behind sampling.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Configuration accepted by `#![proptest_config(...)]`.
///
/// Only `cases` is honoured; the other fields exist so upstream-style
/// struct-update syntax (`..ProptestConfig::default()`) keeps compiling.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of sampled inputs per property.
    pub cases: u32,
    /// Accepted for compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

/// Deterministic generator for property sampling, wrapping the vendored
/// `rand::rngs::StdRng` (as upstream proptest wraps a rand generator).
///
/// Every property test derives its stream from its fully-qualified name, so
/// runs are reproducible without recording seeds.
#[derive(Clone, Debug)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Creates a generator whose stream is a pure function of `name`.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name yields the seed.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        Self {
            inner: StdRng::seed_from_u64(h),
        }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform value in `[0, bound)`. `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::TestRng;

    #[test]
    fn same_name_same_stream() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_names_differ() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("y");
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn below_respects_bound() {
        let mut r = TestRng::deterministic("below");
        for _ in 0..10_000 {
            assert!(r.below(7) < 7);
        }
    }
}
