//! Collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Length bounds accepted by [`vec`]: `lo..hi`, `lo..=hi`, or an exact size.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        Self {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self {
            lo: n,
            hi_inclusive: n,
        }
    }
}

/// Strategy producing `Vec`s whose length is drawn from `size` and whose
/// elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Output of [`vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi_inclusive - self.size.lo + 1) as u64;
        let len = self.size.lo + rng.below(span) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
