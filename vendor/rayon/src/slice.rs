//! Parallel slice operations.

use crate::{current_num_threads, join};
use std::cmp::Ordering;

/// The subset of rayon's `ParallelSliceMut` this workspace uses.
pub trait ParallelSliceMut<T: Send> {
    fn as_parallel_slice_mut(&mut self) -> &mut [T];

    /// Unstable sort, parallelized as a fork/join merge sort over
    /// [`crate::join`] once slices are large enough to amortize a thread.
    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        self.par_sort_unstable_by(T::cmp);
    }

    fn par_sort_unstable_by<F>(&mut self, compare: F)
    where
        F: Fn(&T, &T) -> Ordering + Sync,
    {
        let slice = self.as_parallel_slice_mut();
        let threshold = (slice.len() / (current_num_threads() * 2).max(1)).max(4096);
        par_merge_sort(slice, &compare, threshold);
    }
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn as_parallel_slice_mut(&mut self) -> &mut [T] {
        self
    }
}

fn par_merge_sort<T, F>(slice: &mut [T], compare: &F, threshold: usize)
where
    T: Send,
    F: Fn(&T, &T) -> Ordering + Sync,
{
    if slice.len() <= threshold {
        slice.sort_unstable_by(compare);
        return;
    }
    let mid = slice.len() / 2;
    let (left, right) = slice.split_at_mut(mid);
    join(
        || par_merge_sort(left, compare, threshold),
        || par_merge_sort(right, compare, threshold),
    );
    merge_halves(slice, mid, compare);
}

/// Merges the two sorted halves `slice[..mid]` and `slice[mid..]` in
/// O(n) moves using a buffer holding the left half.
///
/// Safety scheme (the same one `std`'s stable sort uses): the left half is
/// bitwise-copied into `tmp` (whose `len` stays 0, so the `Vec` never drops
/// elements), after which positions `k..j` of the slice form a hole owning
/// no values. The guard restores the unconsumed tail of `tmp` into the hole
/// on every exit path, including a panicking comparator, so each element is
/// owned exactly once at all times.
fn merge_halves<T, F>(slice: &mut [T], mid: usize, compare: &F)
where
    F: Fn(&T, &T) -> Ordering,
{
    let len = slice.len();
    if mid == 0 || mid == len {
        return;
    }
    let ptr = slice.as_mut_ptr();
    let mut tmp: Vec<T> = Vec::with_capacity(mid);

    struct HoleGuard<T> {
        src: *const T,
        dest: *mut T,
        remaining: usize,
    }
    impl<T> Drop for HoleGuard<T> {
        fn drop(&mut self) {
            unsafe {
                std::ptr::copy_nonoverlapping(self.src, self.dest, self.remaining);
            }
        }
    }

    unsafe {
        std::ptr::copy_nonoverlapping(ptr, tmp.as_mut_ptr(), mid);
        let mut hole = HoleGuard {
            src: tmp.as_ptr(),
            dest: ptr,
            remaining: mid,
        };
        let mut j = mid; // next unconsumed element of the right half
        while hole.remaining > 0 && j < len {
            if compare(&*hole.src, &*ptr.add(j)) != Ordering::Greater {
                std::ptr::copy_nonoverlapping(hole.src, hole.dest, 1);
                hole.src = hole.src.add(1);
                hole.remaining -= 1;
            } else {
                std::ptr::copy(ptr.add(j), hole.dest, 1);
                j += 1;
            }
            hole.dest = hole.dest.add(1);
        }
        // Guard drop flushes any left-half tail into the hole; a consumed
        // left half leaves the right tail already in place.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_interleaved_is_correct() {
        // Worst case for a rotation-based merge: strictly alternating keys.
        let n = 200_000usize;
        let mut v: Vec<u64> = Vec::with_capacity(n);
        for i in 0..n / 2 {
            v.push(2 * i as u64);
        }
        for i in 0..n / 2 {
            v.push(2 * i as u64 + 1);
        }
        merge_halves(&mut v, n / 2, &u64::cmp);
        assert!(v.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(v.len(), n);
    }

    #[test]
    fn sort_random_keys_at_scale() {
        // Random keys exercise the merge's interleaving heavily; with the
        // old rotation merge this size took seconds, now it is O(n log n).
        let n = 500_000usize;
        let mut v: Vec<u64> = (0..n as u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17))
            .collect();
        let mut expected = v.clone();
        expected.sort_unstable();
        v.par_sort_unstable();
        assert_eq!(v, expected);
    }

    #[test]
    fn sort_with_comparator() {
        let mut v: Vec<i32> = (0..50_000).map(|i| (i * 37) % 1013 - 500).collect();
        let mut expected = v.clone();
        expected.sort_unstable_by(|a, b| b.cmp(a));
        v.par_sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(v, expected);
    }

    #[test]
    fn merge_edge_cases() {
        let mut empty: Vec<u64> = vec![];
        merge_halves(&mut empty, 0, &u64::cmp);
        let mut single = vec![1u64];
        merge_halves(&mut single, 0, &u64::cmp);
        merge_halves(&mut single, 1, &u64::cmp);
        assert_eq!(single, vec![1]);
        let mut already = vec![1u64, 2, 3, 4];
        merge_halves(&mut already, 2, &u64::cmp);
        assert_eq!(already, vec![1, 2, 3, 4]);
    }

    #[test]
    fn non_copy_elements_survive() {
        let mut v: Vec<String> = (0..10_000)
            .map(|i| format!("{:05}", (i * 7919) % 10_000))
            .collect();
        let mut expected = v.clone();
        expected.sort_unstable();
        v.par_sort_unstable();
        assert_eq!(v, expected);
    }
}
