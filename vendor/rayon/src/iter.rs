//! Parallel iterators over integer ranges.
//!
//! Everything reduces to an *indexed source*: a length plus a `Sync`
//! position→item function. Adapters (`map`, `flat_map_iter`) compose the
//! function; terminals (`for_each`, `collect`) chunk the index space over
//! scoped threads via [`crate::run_chunked`], preserving index order.

use crate::run_chunked;

/// An indexed parallel source: `len` items addressable by position, plus a
/// minimum chunk length for the thread fan-out.
// Sources are never "collections" in the is_empty sense; mirroring rayon,
// no emptiness accessor exists on the trait.
#[allow(clippy::len_without_is_empty)]
pub trait IndexedSource: Sync {
    type Elem: Send;
    fn len(&self) -> usize;
    fn at(&self, i: usize) -> Self::Elem;
    fn min_len_hint(&self) -> usize {
        1
    }
}

/// Conversion into a parallel iterator (rayon's entry point).
pub trait IntoParallelIterator {
    type Iter: ParallelIterator<Item = Self::Item>;
    type Item: Send;
    fn into_par_iter(self) -> Self::Iter;
}

/// Ordered collection target (rayon's `FromParallelIterator`): builds the
/// collection from per-chunk vectors produced in index order.
pub trait FromParallelIterator<T: Send>: Sized {
    fn from_chunk_vecs(chunks: Vec<Vec<T>>) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_chunk_vecs(chunks: Vec<Vec<T>>) -> Self {
        let total = chunks.iter().map(Vec::len).sum();
        let mut out = Vec::with_capacity(total);
        for c in chunks {
            out.extend(c);
        }
        out
    }
}

/// The subset of rayon's `ParallelIterator` this workspace uses.
pub trait ParallelIterator: Sized + IndexedSource {
    type Item: Send;

    /// Hint: chunks handed to worker threads hold at least `n` items.
    fn with_min_len(self, n: usize) -> MinLen<Self> {
        MinLen { base: self, min: n }
    }

    fn map<U, F>(self, f: F) -> Map<Self, F>
    where
        U: Send,
        F: Fn(<Self as IndexedSource>::Elem) -> U + Sync,
    {
        Map { base: self, f }
    }

    /// Maps each item to a serial iterator and flattens, in index order.
    fn flat_map_iter<U, F>(self, f: F) -> FlatMapIter<Self, F>
    where
        U: IntoIterator,
        U::Item: Send,
        F: Fn(<Self as IndexedSource>::Elem) -> U + Sync,
    {
        FlatMapIter { base: self, f }
    }

    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
        Self: IndexedSource<Elem = Self::Item>,
    {
        run_chunked(self.len(), self.min_len_hint(), |range| {
            for i in range {
                f(self.at(i));
            }
        });
    }

    /// Collects into `C`, preserving index order.
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
        Self: IndexedSource<Elem = Self::Item>,
    {
        let chunks = run_chunked(self.len(), self.min_len_hint(), |range| {
            range.map(|i| self.at(i)).collect::<Vec<_>>()
        });
        C::from_chunk_vecs(chunks)
    }
}

// --- integer ranges -------------------------------------------------------

/// Parallel iterator over `start..end` for an integer type.
pub struct ParRange<T> {
    start: T,
    len: usize,
}

macro_rules! par_range {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Iter = ParRange<$t>;
            type Item = $t;
            fn into_par_iter(self) -> ParRange<$t> {
                let len = if self.end > self.start {
                    (self.end - self.start) as usize
                } else {
                    0
                };
                ParRange { start: self.start, len }
            }
        }

        impl IndexedSource for ParRange<$t> {
            type Elem = $t;
            fn len(&self) -> usize {
                self.len
            }
            fn at(&self, i: usize) -> $t {
                self.start + i as $t
            }
        }

        impl ParallelIterator for ParRange<$t> {
            type Item = $t;
        }
    )*};
}

par_range!(u32, u64, usize, i32, i64);

// --- adapters -------------------------------------------------------------

pub struct MinLen<P> {
    base: P,
    min: usize,
}

impl<P: IndexedSource> IndexedSource for MinLen<P> {
    type Elem = P::Elem;
    fn len(&self) -> usize {
        self.base.len()
    }
    fn at(&self, i: usize) -> P::Elem {
        self.base.at(i)
    }
    fn min_len_hint(&self) -> usize {
        self.min.max(1)
    }
}

impl<P: ParallelIterator> ParallelIterator for MinLen<P> {
    type Item = P::Elem;
}

pub struct Map<P, F> {
    base: P,
    f: F,
}

impl<P, F, U> IndexedSource for Map<P, F>
where
    P: IndexedSource,
    U: Send,
    F: Fn(P::Elem) -> U + Sync,
{
    type Elem = U;
    fn len(&self) -> usize {
        self.base.len()
    }
    fn at(&self, i: usize) -> U {
        (self.f)(self.base.at(i))
    }
    fn min_len_hint(&self) -> usize {
        self.base.min_len_hint()
    }
}

impl<P, F, U> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    U: Send,
    F: Fn(P::Elem) -> U + Sync,
{
    type Item = U;
}

pub struct FlatMapIter<P, F> {
    base: P,
    f: F,
}

// A flat-map's output is not indexed, but its *input* is; the terminals
// below walk the input index space and flatten per chunk. `at` is
// intentionally unreachable — `for_each`/`collect` are overridden.
impl<P, F, U> IndexedSource for FlatMapIter<P, F>
where
    P: IndexedSource,
    U: IntoIterator,
    U::Item: Send,
    F: Fn(P::Elem) -> U + Sync,
{
    type Elem = U::Item;
    fn len(&self) -> usize {
        self.base.len()
    }
    fn at(&self, _i: usize) -> U::Item {
        unreachable!("FlatMapIter items are consumed per input index, not addressed")
    }
    fn min_len_hint(&self) -> usize {
        self.base.min_len_hint()
    }
}

impl<P, F, U> ParallelIterator for FlatMapIter<P, F>
where
    P: ParallelIterator,
    U: IntoIterator,
    U::Item: Send,
    F: Fn(P::Elem) -> U + Sync,
{
    type Item = U::Item;

    fn for_each<G>(self, g: G)
    where
        G: Fn(U::Item) + Sync,
    {
        run_chunked(self.base.len(), self.base.min_len_hint(), |range| {
            for i in range {
                for item in (self.f)(self.base.at(i)) {
                    g(item);
                }
            }
        });
    }

    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<U::Item>,
    {
        let chunks = run_chunked(self.base.len(), self.base.min_len_hint(), |range| {
            let mut out = Vec::new();
            for i in range {
                out.extend((self.f)(self.base.at(i)));
            }
            out
        });
        C::from_chunk_vecs(chunks)
    }
}
