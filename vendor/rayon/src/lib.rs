//! Offline stand-in for `rayon`.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the slice of rayon it uses, implemented on `std::thread::scope`:
//!
//! * [`join`] — genuinely parallel two-way fork/join, with a global active-
//!   thread limiter so deep recursions (Super-EGO's EGO-join) degrade to
//!   sequential calls instead of spawning unbounded threads.
//! * `into_par_iter()` on integer ranges with `map`, `flat_map_iter`,
//!   `with_min_len`, `for_each` and order-preserving `collect` — enough for
//!   the simulated GPU's block scheduler and the parallel host join.
//! * `par_sort_unstable` via [`slice::ParallelSliceMut`].
//!
//! Unlike rayon there is no work-stealing pool: each parallel call chunks
//! its index space over `available_parallelism` scoped threads. That keeps
//! the one-thread-per-point kernel model honest (blocks really do run
//! concurrently) without a scheduler dependency.

use std::sync::atomic::{AtomicUsize, Ordering};

pub mod iter;
pub mod slice;

pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, ParallelIterator};
    pub use crate::slice::ParallelSliceMut;
}

/// Number of worker threads parallel calls will fan out to.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

static ACTIVE_FORKS: AtomicUsize = AtomicUsize::new(0);

/// Runs both closures, potentially in parallel, returning both results.
///
/// A global limiter caps concurrent forks at twice the hardware thread
/// count; beyond that the call runs sequentially (matching rayon's
/// behaviour of executing on the current thread when the pool is busy).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let limit = current_num_threads() * 2;
    if ACTIVE_FORKS.fetch_add(1, Ordering::Relaxed) < limit {
        let out = std::thread::scope(|s| {
            let hb = s.spawn(b);
            let ra = a();
            (ra, hb.join().expect("rayon::join closure panicked"))
        });
        ACTIVE_FORKS.fetch_sub(1, Ordering::Relaxed);
        out
    } else {
        ACTIVE_FORKS.fetch_sub(1, Ordering::Relaxed);
        (a(), b())
    }
}

/// Splits `0..len` into per-thread chunks (each at least `min_len` long,
/// except possibly the last) and runs `work` on each chunk concurrently,
/// returning the per-chunk results in index order.
pub(crate) fn run_chunked<R, W>(len: usize, min_len: usize, work: W) -> Vec<R>
where
    R: Send,
    W: Fn(std::ops::Range<usize>) -> R + Sync,
{
    if len == 0 {
        return Vec::new();
    }
    let min_len = min_len.max(1);
    let threads = current_num_threads().max(1);
    let chunk = len.div_ceil(threads).max(min_len);
    let n_chunks = len.div_ceil(chunk);
    if n_chunks <= 1 {
        return vec![work(0..len)];
    }
    std::thread::scope(|s| {
        let work = &work;
        let handles: Vec<_> = (0..n_chunks)
            .map(|c| {
                let lo = c * chunk;
                let hi = (lo + chunk).min(len);
                s.spawn(move || work(lo..hi))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel chunk panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "x".to_string());
        assert_eq!(a, 2);
        assert_eq!(b, "x");
    }

    #[test]
    fn nested_join_deep_recursion() {
        fn sum(lo: u64, hi: u64) -> u64 {
            if hi - lo <= 64 {
                (lo..hi).sum()
            } else {
                let mid = lo + (hi - lo) / 2;
                let (a, b) = super::join(|| sum(lo, mid), || sum(mid, hi));
                a + b
            }
        }
        assert_eq!(sum(0, 100_000), 100_000 * 99_999 / 2);
    }

    #[test]
    fn for_each_visits_every_index() {
        let acc = AtomicU64::new(0);
        (0..10_000u64).into_par_iter().for_each(|i| {
            acc.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(acc.load(Ordering::Relaxed), 10_000 * 9_999 / 2);
    }

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..5_000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, (0..5_000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn flat_map_iter_preserves_order() {
        let v: Vec<u32> = (0..100u32)
            .into_par_iter()
            .with_min_len(3)
            .flat_map_iter(|i| std::iter::repeat_n(i, (i % 3) as usize))
            .collect();
        let expected: Vec<u32> = (0..100u32)
            .flat_map(|i| std::iter::repeat_n(i, (i % 3) as usize))
            .collect();
        assert_eq!(v, expected);
    }

    #[test]
    fn par_sort_unstable_sorts() {
        let mut v: Vec<u64> = (0..10_000u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9))
            .collect();
        let mut expected = v.clone();
        expected.sort_unstable();
        v.par_sort_unstable();
        assert_eq!(v, expected);
    }

    #[test]
    fn empty_range_is_fine() {
        let v: Vec<usize> = (0..0usize).into_par_iter().map(|i| i).collect();
        assert!(v.is_empty());
        (0..0u32)
            .into_par_iter()
            .for_each(|_| panic!("must not run"));
    }
}
