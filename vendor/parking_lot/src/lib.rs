//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API
//! (`lock()` returns the guard directly, not a `Result`). Poisoning is
//! deliberately ignored — parking_lot has no poisoning, and the workspace's
//! critical sections are short accounting updates.

use std::sync::{self, TryLockError};

/// A mutual-exclusion lock with parking_lot's panic-transparent API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Unlike `std`, a panic
    /// in another critical section does not poison the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// A reader-writer lock with parking_lot's panic-transparent API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;
    use std::sync::Arc;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn survives_panic_in_critical_section() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: the lock is usable after a panic.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(1);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
