//! Offline stand-in for `criterion`.
//!
//! Implements the API subset the workspace benches use — `Criterion`,
//! `BenchmarkGroup` (`sample_size`, `bench_function`, `bench_with_input`,
//! `finish`), `BenchmarkId`, `criterion_group!`, `criterion_main!` — with a
//! plain wall-clock measurement loop: per benchmark, a short warm-up, then
//! `sample_size` timed samples whose median per-iteration time is printed.
//! No statistical analysis, plotting, or HTML reports.
//!
//! Harness flags: `--test` runs each benchmark body exactly once (this is
//! what `cargo test --benches` passes); a bare positional argument filters
//! benchmarks by substring, as upstream does; every other flag cargo or a
//! user may pass (`--bench`, `--quiet`, ...) is accepted and ignored.

use std::fmt;
use std::time::{Duration, Instant};

/// Identifier for a parameterized benchmark: `group_name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Anything usable as a benchmark name: `&str`, `String`, or [`BenchmarkId`].
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] runs the measured body.
pub struct Bencher {
    mode: Mode,
    sample_size: usize,
    /// Median per-iteration time of the last `iter` call (test mode: zero).
    last: Duration,
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Measure,
    TestOnce,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        match self.mode {
            Mode::TestOnce => {
                std::hint::black_box(body());
                self.last = Duration::ZERO;
            }
            Mode::Measure => {
                // Warm-up: run until ~20ms or 3 iterations, whichever first.
                let warm_start = Instant::now();
                let mut warm_iters = 0u32;
                while warm_iters < 3 && warm_start.elapsed() < Duration::from_millis(20) {
                    std::hint::black_box(body());
                    warm_iters += 1;
                }
                let per_iter_guess =
                    (warm_start.elapsed() / warm_iters.max(1)).max(Duration::from_nanos(1));
                // Choose an inner batch so one sample lasts >= ~1ms.
                let batch = (Duration::from_millis(1).as_nanos() / per_iter_guess.as_nanos())
                    .clamp(1, 1_000_000) as u32;
                let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
                for _ in 0..self.sample_size {
                    let t = Instant::now();
                    for _ in 0..batch {
                        std::hint::black_box(body());
                    }
                    samples.push(t.elapsed() / batch);
                }
                samples.sort_unstable();
                self.last = samples[samples.len() / 2];
            }
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        let sample_size = self.sample_size;
        self.criterion.run_one(&full, sample_size, |b| f(b));
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        let sample_size = self.sample_size;
        self.criterion.run_one(&full, sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (upstream finalizes reports here; the shim prints as
    /// it goes, so this only consumes the group).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    mode: Mode,
    filter: Option<String>,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut mode = Mode::Measure;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => mode = Mode::TestOnce,
                s if !s.starts_with('-') => filter = Some(s.to_string()),
                _ => {} // --bench and friends: accepted, ignored
            }
        }
        Self {
            mode,
            filter,
            default_sample_size: 100,
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size,
        }
    }

    pub fn bench_function<F>(&mut self, name: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = name.into_benchmark_id();
        let sample_size = self.default_sample_size;
        self.run_one(&full, sample_size, |b| f(b));
        self
    }

    fn run_one(&mut self, name: &str, sample_size: usize, f: impl FnOnce(&mut Bencher)) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            mode: self.mode,
            sample_size,
            last: Duration::ZERO,
        };
        f(&mut b);
        match self.mode {
            Mode::TestOnce => println!("test {name} ... ok"),
            Mode::Measure => println!("{name:<60} {:>12.3?}/iter", b.last),
        }
    }
}

/// Declares a function that runs the listed benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

/// Re-export for code that uses `criterion::black_box`.
pub use std::hint::black_box;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("grid", 4).to_string(), "grid/4");
        assert_eq!(BenchmarkId::from_parameter(8).to_string(), "8");
    }

    #[test]
    fn bencher_runs_body() {
        let mut count = 0u64;
        let mut b = Bencher {
            mode: Mode::TestOnce,
            sample_size: 10,
            last: Duration::ZERO,
        };
        b.iter(|| count += 1);
        assert_eq!(count, 1);
    }

    #[test]
    fn group_runs_and_filters() {
        let mut c = Criterion {
            mode: Mode::TestOnce,
            filter: Some("keep".into()),
            default_sample_size: 10,
        };
        let mut ran = Vec::new();
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(10);
            g.bench_function("keep_me", |b| b.iter(|| ran.push("keep")));
            g.bench_function("skip_me", |b| b.iter(|| ran.push("skip")));
            g.finish();
        }
        assert_eq!(ran, vec!["keep"]);
    }
}
